package queue

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"pdspbench/internal/controller"
	"pdspbench/internal/metrics"
)

// ExecuteFunc runs one leased campaign and returns its records. The
// worker daemon calls it once per lease; tests substitute fakes (a
// blocking ExecuteFunc is how the fabric test simulates a worker dying
// mid-lease).
type ExecuteFunc func(ctx context.Context, spec *controller.Spec) ([]metrics.RunRecord, error)

// RunCampaign is the production ExecuteFunc: a fresh controller per job
// (no shared state between leases), records returned to the dispatcher
// rather than stored locally. fast selects reduced simulation fidelity,
// mirroring `pdspbench bench --fast`.
func RunCampaign(fast bool) ExecuteFunc {
	return func(ctx context.Context, spec *controller.Spec) ([]metrics.RunRecord, error) {
		c := controller.New()
		if fast {
			c = controller.Fast()
		}
		return c.RunSpec(ctx, spec)
	}
}

// Worker is the `pdspbench worker` daemon: it registers capacity with
// the dispatcher, polls for leases, executes campaigns on either
// backend, keeps its leases alive while running, and streams the
// resulting RunRecords back on completion. Cancelling the Run context
// stops the daemon without failing its current job — exactly the crash
// the lease machinery exists to absorb: the lease expires and another
// worker picks the job up.
type Worker struct {
	// Client speaks to the dispatcher; required.
	Client *Client
	// Name labels the worker in listings (default "worker").
	Name string
	// Capacity is advertised to the dispatcher (≤0 = 1). The daemon
	// itself executes one job at a time; run one daemon per slot to use
	// a whole machine.
	Capacity int
	// Backends lists the execution backends this worker accepts; empty
	// means any.
	Backends []string
	// Poll is the idle wait between lease attempts (default 500ms).
	Poll time.Duration
	// Once makes Run return once the queue is drained (no pending and
	// no leased jobs) — the batch mode the smoke test and one-shot
	// fleets use.
	Once bool
	// Execute runs a leased campaign (default RunCampaign(true)).
	Execute ExecuteFunc
	// Logf receives progress lines; nil discards them.
	Logf func(format string, args ...any)
}

func (w *Worker) logf(format string, args ...any) {
	if w.Logf != nil {
		w.Logf(format, args...)
	}
}

func (w *Worker) execute() ExecuteFunc {
	if w.Execute != nil {
		return w.Execute
	}
	return RunCampaign(true)
}

// Run registers and drains leases until the context is cancelled (or,
// with Once, until the queue is empty). The returned error is nil on a
// drained Once run or a context cancellation; anything else is a
// protocol failure worth restarting the daemon over.
func (w *Worker) Run(ctx context.Context) error {
	if w.Client == nil {
		return errors.New("queue: worker needs a Client")
	}
	name := w.Name
	if name == "" {
		name = "worker"
	}
	reg, err := w.Client.Register(ctx, RegisterRequest{Name: name, Capacity: w.Capacity, Backends: w.Backends})
	if err != nil {
		return fmt.Errorf("queue: worker register: %w", err)
	}
	id := reg.Worker.ID
	beat := time.Duration(reg.HeartbeatMS) * time.Millisecond
	if beat <= 0 {
		beat = time.Second
	}
	// The keep-alive tick must renew leases well inside the lease TTL,
	// never just at the heartbeat cadence: a dispatcher whose advertised
	// heartbeat equals the lease TTL would otherwise have the first
	// Extend land exactly at expiry, after the lease was already reaped.
	if ttl := time.Duration(reg.LeaseTTLMS) * time.Millisecond / 3; ttl > 0 && ttl < beat {
		beat = ttl
	}
	poll := w.Poll
	if poll <= 0 {
		poll = 500 * time.Millisecond
	}
	w.logf("worker %s (%s) registered: keep-alive %v, backends %v", id, name, beat, w.Backends)

	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		resp, err := w.Client.Lease(ctx, id)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return fmt.Errorf("queue: worker lease: %w", err)
		}
		if resp.Job == nil {
			if w.Once && resp.Stats.Pending == 0 && resp.Stats.Leased == 0 {
				w.logf("worker %s: queue drained (%d completed, %d failed)", id, resp.Stats.Completed, resp.Stats.Failed)
				return nil
			}
			if err := sleep(ctx, poll); err != nil {
				return err
			}
			continue
		}
		if err := w.runJob(ctx, id, resp.Job, beat); err != nil {
			return err
		}
	}
}

// sleep waits d or until ctx cancels.
func sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

type execResult struct {
	records []metrics.RunRecord
	err     error
}

// runJob executes one leased campaign while a heartbeat/extend loop
// keeps the lease alive. Losing the lease mid-run (dispatcher reclaimed
// it) cancels the execution and discards its results; the dispatcher's
// exactly-once completion gate would reject them anyway.
func (w *Worker) runJob(ctx context.Context, workerID string, job *Job, beat time.Duration) error {
	w.logf("worker %s: leased %s (%s, attempt %d/%d)", workerID, job.ID, job.Campaign.Name, job.Attempts, job.MaxAttempts)
	execCtx, cancelExec := context.WithCancel(ctx)
	defer cancelExec()
	done := make(chan execResult, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		records, err := w.execute()(execCtx, &job.Campaign)
		done <- execResult{records, err}
	}()
	defer wg.Wait()

	ticker := time.NewTicker(beat)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			// Daemon killed mid-lease: walk away. No fail report — the
			// lease expires and the job is reclaimed, which is the crash
			// semantics the fabric test injects deliberately.
			return ctx.Err()
		case <-ticker.C:
			// Extend before heartbeating: heartbeats reap expired leases
			// queue-side, so renewing first guarantees a live worker never
			// reaps its own lease at the TTL margin.
			if err := w.Client.Extend(ctx, job.ID, job.LeaseID); err != nil {
				if ctx.Err() != nil {
					return ctx.Err()
				}
				// Stale lease: the dispatcher took the job back. Stop
				// burning cycles on it and move on.
				w.logf("worker %s: lost lease on %s: %v", workerID, job.ID, err)
				cancelExec()
				res := <-done
				_ = res
				return nil
			}
			if _, err := w.Client.Heartbeat(ctx, workerID); err != nil && ctx.Err() == nil {
				w.logf("worker %s: heartbeat: %v", workerID, err)
			}
		case res := <-done:
			return w.report(ctx, workerID, job, res)
		}
	}
}

// report sends the execution outcome to the dispatcher.
func (w *Worker) report(ctx context.Context, workerID string, job *Job, res execResult) error {
	if res.err != nil {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		w.logf("worker %s: job %s failed: %v", workerID, job.ID, res.err)
		if err := w.Client.Fail(ctx, job.ID, job.LeaseID, res.err.Error()); err != nil {
			w.logf("worker %s: fail report rejected: %v", workerID, err)
		}
		return nil
	}
	if err := w.Client.Complete(ctx, job.ID, job.LeaseID, res.records); err != nil {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		// A stale-lease rejection here means the dispatcher reclaimed
		// the job while we were finishing: our records are discarded and
		// the reclaimed attempt's will land instead — exactly-once
		// recording holds.
		w.logf("worker %s: completion of %s rejected: %v", workerID, job.ID, err)
		return nil
	}
	w.logf("worker %s: completed %s (%d records)", workerID, job.ID, len(res.records))
	return nil
}

// ParseBackends splits a comma-separated backend list flag.
func ParseBackends(arg string) []string {
	if arg == "" {
		return nil
	}
	var out []string
	for _, b := range strings.Split(arg, ",") {
		if b = strings.TrimSpace(b); b != "" {
			out = append(out, b)
		}
	}
	return out
}
