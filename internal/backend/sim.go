package backend

import (
	"context"

	"pdspbench/internal/chaos"
	"pdspbench/internal/cluster"
	"pdspbench/internal/core"
	"pdspbench/internal/metrics"
	"pdspbench/internal/simengine"
)

func init() {
	Register("sim", func() Backend { return &Sim{Cfg: simengine.Defaults()} })
}

// Sim executes plans on the discrete-event cluster simulator — the
// backend behind the paper's scale regime (event rates to 4M events/s,
// parallelism to 256) that cannot run in real time on one machine.
type Sim struct {
	// Cfg tunes fidelity and the calibrated cost constants; a SUT
	// profile (flink, storm, microbatch) is just a Cfg.
	Cfg SimConfig
}

// Name implements Backend.
func (s *Sim) Name() string { return "sim" }

// Run places the plan on the modelled cluster and simulates it
// spec.Runs times with distinct seeds, reporting the paper's statistic
// (mean of the runs' median latencies, companion metrics averaged).
// Cancellation is checked between runs: one simulated run is short, so
// this is where a deadline can usefully interrupt a campaign.
func (s *Sim) Run(ctx context.Context, plan *core.PQP, cl *cluster.Cluster, spec RunSpec) (*metrics.RunRecord, error) {
	pl, err := cluster.Place(plan, cl, spec.Placement)
	if err != nil {
		return nil, err
	}
	runs := spec.Runs
	if runs <= 0 {
		runs = 1
	}
	cfg := s.Cfg
	if spec.Seed != 0 {
		cfg.Seed = spec.Seed
	}
	cfg.AllowedLateness = float64(spec.AllowedLatenessMs) / 1000
	dur := cfg.Duration
	if dur <= 0 {
		dur = simengine.Defaults().Duration
	}
	rec := &metrics.RunRecord{
		ID:        recordID(s.Name(), plan, cl),
		Backend:   s.Name(),
		Workload:  plan.Structure,
		Cluster:   cl.Name,
		Category:  core.CategoryForDegree(plan.MaxParallelism()).String(),
		MaxDegree: plan.MaxParallelism(),
		EventRate: planEventRate(plan),
		Runs:      runs,
	}
	if !spec.Faults.Empty() {
		events, err := spec.Faults.Schedule(plan, cl, spec.Placement)
		if err != nil {
			return nil, err
		}
		cfg.Faults = events
		cfg.MaxRestarts = spec.Faults.Restarts()
		cfg.RestartDelay = spec.Faults.Delay()
		rec.FaultSchedule = chaos.Hash(events)
	}
	var in, out float64
	for i := 0; i < runs; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		c := cfg
		c.Seed = cfg.Seed + int64(i)*7919
		res, err := simengine.Simulate(plan, pl, c)
		if err != nil {
			return nil, err
		}
		n := float64(runs)
		rec.LatencyP50 += res.LatencyP50 / n
		rec.LatencyP95 += res.LatencyP95 / n
		rec.LatencyP99 += res.LatencyP99 / n
		rec.LatencyMean += res.LatencyMean / n
		rec.Throughput += res.Throughput / n
		rec.ElapsedSec += dur / n
		rec.Saturated = rec.Saturated || res.Saturated
		in += res.TuplesIn
		out += res.TuplesOut
		rec.FaultsInjected += uint64(res.FaultsInjected)
		rec.Restarts += uint64(res.Restarts)
		rec.DowntimeMS += res.DowntimeSec * 1000
		rec.RecoveredTuples += uint64(res.RecoveredTuples)
		rec.LateDrops += uint64(res.LateDrops + 0.5)
	}
	rec.TuplesIn = uint64(in / float64(runs))
	rec.TuplesOut = uint64(out / float64(runs))
	return rec, nil
}

// Explain runs one simulation and returns the mean-latency breakdown
// (queue wait, service, network, window residence) — diagnostic detail
// only the simulator can attribute.
func (s *Sim) Explain(ctx context.Context, plan *core.PQP, cl *cluster.Cluster, spec RunSpec) (Breakdown, error) {
	if err := ctx.Err(); err != nil {
		return Breakdown{}, err
	}
	pl, err := cluster.Place(plan, cl, spec.Placement)
	if err != nil {
		return Breakdown{}, err
	}
	cfg := s.Cfg
	if spec.Seed != 0 {
		cfg.Seed = spec.Seed
	}
	res, err := simengine.Simulate(plan, pl, cfg)
	if err != nil {
		return Breakdown{}, err
	}
	return res.Breakdown, nil
}
