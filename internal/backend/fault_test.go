package backend

import (
	"context"
	"errors"
	"testing"
	"time"

	"pdspbench/internal/chaos"
	"pdspbench/internal/testutil"
)

// TestBackendFaultParity runs the fault-injection parity pair on both
// backends: the budgeted crash must complete with recovery metrics
// populated and identical fault-schedule fingerprints, and the
// kill-every-instance case must abort with the same typed FaultError.
func TestBackendFaultParity(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)
	cases, err := FaultParityCases()
	if err != nil {
		t.Fatal(err)
	}
	sim, err := ByName("sim")
	if err != nil {
		t.Fatal(err)
	}
	real, err := ByName("real")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	results, err := Parity(ctx, []Backend{sim, real}, testCluster(), cases)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		for _, iss := range r.Issues {
			t.Errorf("case %s: %s", r.Case, iss)
		}
	}
	// The completing case must carry the same schedule fingerprint on
	// both backends — one chaos.Plan, one expansion.
	for _, r := range results {
		if r.Case != "crash-restart" {
			continue
		}
		simRec, realRec := r.Records["sim"], r.Records["real"]
		if simRec == nil || realRec == nil {
			t.Fatalf("crash-restart: missing records (sim=%v real=%v)", simRec != nil, realRec != nil)
		}
		if simRec.FaultSchedule == "" || simRec.FaultSchedule != realRec.FaultSchedule {
			t.Errorf("fault schedules differ: sim=%q real=%q", simRec.FaultSchedule, realRec.FaultSchedule)
		}
	}
	t.Log("\n" + FormatParity(results))
}

// TestKillLastInstanceFailsFast asserts the strongest fault guarantee
// directly: killing every instance of an operator with no restart
// budget returns the typed error on both backends well inside a
// deadline — neither SUT may hang waiting on a dead operator.
func TestKillLastInstanceFailsFast(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)
	cases, err := FaultParityCases()
	if err != nil {
		t.Fatal(err)
	}
	var kill *ParityCase
	for i := range cases {
		if cases[i].WantFaultOp != "" {
			kill = &cases[i]
		}
	}
	if kill == nil {
		t.Fatal("FaultParityCases has no kill-last-instance case")
	}
	for _, name := range []string{"sim", "real"} {
		b, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		_, err = b.Run(ctx, kill.Plan, testCluster(), kill.Spec)
		cancel()
		if err == nil {
			t.Fatalf("%s: run completed despite losing every instance of %q", name, kill.WantFaultOp)
		}
		if errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("%s: run hung until the deadline instead of failing fast", name)
		}
		var fe *chaos.FaultError
		if !errors.As(err, &fe) {
			t.Fatalf("%s: err = %v (%T), want *chaos.FaultError", name, err, err)
		}
		if fe.Op != kill.WantFaultOp {
			t.Errorf("%s: FaultError.Op = %q, want %q", name, fe.Op, kill.WantFaultOp)
		}
	}
}
