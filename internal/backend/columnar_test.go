package backend

import (
	"context"
	"sort"
	"sync"
	"testing"

	"pdspbench/internal/engine"
	"pdspbench/internal/tuple"
)

// columnarTap collects the sink multiset fingerprint of one run.
type columnarTap struct {
	mu  sync.Mutex
	out []string
}

func (c *columnarTap) tap(_ string, t *tuple.Tuple) {
	c.mu.Lock()
	c.out = append(c.out, t.String())
	c.mu.Unlock()
}

func (c *columnarTap) sorted() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := append([]string(nil), c.out...)
	sort.Strings(out)
	return out
}

// TestColumnarBackendParity runs every DefaultParityCases plan on the
// real backend with the columnar plane off and on: the sink multisets
// must be identical, tuple for tuple. Plans run at parallelism 1 so the
// row plane itself is deterministic — with racing instances, channel
// interleaving perturbs float-sum order and watermark progress, and
// row-vs-row runs already diverge in the last ulp. Parallelism > 1
// columnar equivalence is covered at the engine layer, where plans can
// be shaped to keep per-instance arrival order deterministic.
func TestColumnarBackendParity(t *testing.T) {
	cases, err := DefaultParityCases()
	if err != nil {
		t.Fatal(err)
	}
	cl := testCluster()
	for _, pc := range cases {
		pc := pc
		t.Run(pc.Name, func(t *testing.T) {
			pc.Plan.SetUniformParallelism(1)
			run := func(columnar bool) []string {
				tap := &columnarTap{}
				spec := pc.Spec
				spec.SinkTap = tap.tap
				b := &Real{Opts: engine.Options{Columnar: columnar, ChainOperators: true}}
				if _, err := b.Run(context.Background(), pc.Plan, cl, spec); err != nil {
					t.Fatalf("columnar=%v: %v", columnar, err)
				}
				return tap.sorted()
			}
			want := run(false)
			got := run(true)
			if len(want) == 0 {
				t.Fatalf("row run delivered no sink tuples")
			}
			if len(got) != len(want) {
				t.Fatalf("columnar delivered %d sink tuples, row delivered %d", len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("sink multiset diverges at %d: columnar %q vs row %q", i, got[i], want[i])
				}
			}
		})
	}
}
