package backend

import (
	"context"
	"time"

	"pdspbench/internal/chaos"
	"pdspbench/internal/cluster"
	"pdspbench/internal/core"
	"pdspbench/internal/engine"
	"pdspbench/internal/metrics"
	"pdspbench/internal/stream"
)

func init() {
	Register("real", func() Backend { return &Real{} })
}

// Real executes plans on the in-process dataflow engine — goroutine
// operator instances, bounded channels, real wall-clock latencies. It
// is the functional-regime SUT: sources are bounded
// (spec.TuplesPerSource per instance) so a run terminates, and the
// modelled cluster is recorded but not enforced, since every instance
// shares this machine.
type Real struct {
	// Opts carries engine tuning (batching, chaining, channel capacity).
	// Sources, UDOs and SinkTap are populated per run from the RunSpec.
	Opts engine.Options
}

// Name implements Backend.
func (r *Real) Name() string { return "real" }

// Run executes the plan spec.Runs times on the real engine and reports
// the same statistic as the sim backend (mean of the runs' median
// latencies, companion metrics averaged, tuple counts from the last
// run's accounting summed over repetitions divided out). Payloads come
// from spec.App when set; otherwise sources are synthesized from the
// plan's schemas, which covers plans of standard operators (UDO plans
// need their application's implementations).
func (r *Real) Run(ctx context.Context, plan *core.PQP, cl *cluster.Cluster, spec RunSpec) (*metrics.RunRecord, error) {
	runs := spec.Runs
	if runs <= 0 {
		runs = 1
	}
	seed := spec.Seed
	if seed == 0 {
		seed = 1
	}
	tuples := spec.TuplesPerSource
	if tuples <= 0 {
		tuples = DefaultTuplesPerSource
	}
	rec := &metrics.RunRecord{
		ID:        recordID(r.Name(), plan, cl),
		Backend:   r.Name(),
		Workload:  plan.Structure,
		Cluster:   cl.Name,
		Category:  core.CategoryForDegree(plan.MaxParallelism()).String(),
		MaxDegree: plan.MaxParallelism(),
		EventRate: planEventRate(plan),
		Runs:      runs,
	}
	var faultEvents []chaos.Event
	if !spec.Faults.Empty() {
		events, err := spec.Faults.Schedule(plan, cl, spec.Placement)
		if err != nil {
			return nil, err
		}
		faultEvents = events
		rec.FaultSchedule = chaos.Hash(events)
	}
	var in, out uint64
	for i := 0; i < runs; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		opts := r.Opts
		runSeed := seed + int64(i)*7919
		if spec.App != nil {
			opts.Sources = spec.App.Sources(runSeed, tuples)
			opts.UDOs = spec.App.UDOs()
		} else {
			opts.Sources = syntheticSources(plan, runSeed, tuples)
		}
		opts.Sources = disorderSources(plan, opts.Sources, runSeed)
		opts.AllowedLateness = time.Duration(spec.AllowedLatenessMs) * time.Millisecond
		opts.SinkTap = spec.SinkTap
		if faultEvents != nil {
			opts.Faults = faultEvents
			opts.MaxRestarts = spec.Faults.Restarts()
			opts.RestartDelay = time.Duration(spec.Faults.Delay() * float64(time.Second))
			// Fault event times are seconds from run start; throttling
			// paces the run in real time so the schedule lands inside it.
			opts.Throttle = true
		}
		rt, err := engine.New(plan, opts)
		if err != nil {
			return nil, err
		}
		rep, err := rt.Run(ctx)
		if err != nil {
			return nil, err
		}
		n := float64(runs)
		rec.LatencyP50 += rep.LatencyP50 / n
		rec.LatencyP95 += rep.LatencyP95 / n
		rec.LatencyP99 += rep.LatencyP99 / n
		rec.LatencyMean += rep.LatencyMean / n
		rec.Throughput += rep.Throughput / n
		rec.ElapsedSec += rep.Elapsed.Seconds() / n
		in += rep.TuplesIn
		out += rep.TuplesOut
		rec.FaultsInjected += rep.FaultsInjected
		rec.Restarts += rep.Restarts
		rec.DowntimeMS += float64(rep.Downtime.Milliseconds())
		rec.RecoveredTuples += rep.RecoveredTuples
		rec.LateDrops += rep.LateDrops
	}
	rec.TuplesIn = in / uint64(runs)
	rec.TuplesOut = out / uint64(runs)
	return rec, nil
}

// disorderSources wraps the factories of sources whose plan spec
// carries a DisorderSpec in stream.NewDisordered, so event-time
// disorder applies uniformly to synthetic and application sources.
// Seeds are decorrelated per source and instance so parallel instances
// shuffle independently.
func disorderSources(plan *core.PQP, sources map[string]engine.SourceFactory, seed int64) map[string]engine.SourceFactory {
	var wrapped map[string]engine.SourceFactory
	for si, src := range plan.Sources() {
		d := src.Source.Disorder
		inner := sources[src.ID]
		if d == nil || inner == nil {
			continue
		}
		if wrapped == nil {
			wrapped = make(map[string]engine.SourceFactory, len(sources))
			for id, f := range sources {
				wrapped[id] = f
			}
		}
		dSeed := seed + 31 + int64(si)*104729
		spec := d
		wrapped[src.ID] = func(idx int) engine.SourceGenerator {
			return stream.NewDisordered(inner(idx), spec, dSeed+int64(idx)*7919)
		}
	}
	if wrapped == nil {
		return sources
	}
	return wrapped
}

// syntheticSources builds bounded random generators for every source
// operator from its declared schema, rate and distribution. Seeds are
// decorrelated per source and per instance so parallel sources do not
// duplicate data.
func syntheticSources(plan *core.PQP, seed int64, tuplesPerInstance int) map[string]engine.SourceFactory {
	out := make(map[string]engine.SourceFactory)
	for si, src := range plan.Sources() {
		spec := src.Source
		srcSeed := seed + int64(si)*104729
		out[src.ID] = func(idx int) engine.SourceGenerator {
			return stream.NewSynthetic(spec.Schema, srcSeed+int64(idx)*7919, tuplesPerInstance, spec.EventRate, spec.Distribution)
		}
	}
	return out
}
