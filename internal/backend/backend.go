// Package backend is the execution layer of PDSP-Bench: one protocol —
// Run(plan, cluster, spec) → RunRecord — implemented by every System
// Under Test. The paper claims the SUT "can be exchanged by any SPS";
// this package is where that exchange happens. Two backends ship:
//
//   - Sim: the discrete-event cluster simulator (internal/simengine),
//     which models CloudLab-scale deployments that cannot run in real
//     time on one machine;
//   - Real: the in-process dataflow engine (internal/engine), which
//     executes plans for real with bounded sources.
//
// Both return the same metrics.RunRecord, so real-engine runs land in
// the run store, the figures and the ML corpus exactly like simulated
// ones. This is the only package allowed to import both
// internal/engine and internal/simengine (enforced by pdsplint's
// api-boundary rule); the controller, CLI and server all go through
// the Backend interface. The interface call is per *run*, not per
// tuple, so the data-plane hot paths are untouched.
package backend

import (
	"context"
	"fmt"
	"sort"

	"pdspbench/internal/apps"
	"pdspbench/internal/chaos"
	"pdspbench/internal/cluster"
	"pdspbench/internal/core"
	"pdspbench/internal/metrics"
	"pdspbench/internal/simengine"
	"pdspbench/internal/tuple"
)

// SimConfig aliases the simulator configuration so layers above the
// backend (controller, CLI, server) can tune fidelity and cost
// calibration without importing internal/simengine directly.
type SimConfig = simengine.Config

// Breakdown aliases the simulator's mean-latency decomposition for the
// same reason.
type Breakdown = simengine.Breakdown

// SUTProfile aliases a calibrated simulator cost profile (flink, storm,
// microbatch).
type SUTProfile = simengine.Profile

// SimDefaults returns the calibrated default simulator configuration.
func SimDefaults() SimConfig { return simengine.Defaults() }

// Profiles lists the built-in SUT calibrations for the sim backend.
func Profiles() []SUTProfile { return simengine.Profiles() }

// ProfileByName resolves a SUT profile; ok is false for unknown names.
func ProfileByName(name string) (SUTProfile, bool) { return simengine.ProfileByName(name) }

// Default bounds for real-engine executions. DefaultEventRate is the
// source rate a plan is built at when the caller does not choose one
// (the simulator regime default of 500k events/s would swamp a bounded
// in-process run); DefaultTuplesPerSource bounds each source instance
// so an execution terminates.
const (
	DefaultEventRate       = 100_000
	DefaultTuplesPerSource = 10_000
)

// RunSpec carries the per-run parameters of the benchmark protocol —
// everything a backend needs beyond the plan and the cluster.
type RunSpec struct {
	// Runs is the repetition count; the reported record is the paper's
	// statistic (mean over runs of each run's median latency, companion
	// metrics averaged). Default 1.
	Runs int
	// Seed drives the backend's randomness; run i uses Seed + i*7919.
	// 0 means the backend's configured default.
	Seed int64
	// EventRate is the source rate (events/s) a plan should be built at
	// when the caller derives the plan from this spec; backends use it
	// only for bookkeeping since the plan's sources carry their rates.
	// 0 means DefaultEventRate.
	EventRate float64
	// TuplesPerSource bounds each source instance on the real backend so
	// executions terminate (≤0 means DefaultTuplesPerSource). The sim
	// backend models unbounded streams and ignores it.
	TuplesPerSource int
	// Placement selects the instance-placement strategy on the modelled
	// cluster (sim backend).
	Placement cluster.Strategy
	// App supplies executable payloads (source generators and UDO
	// implementations) for the real backend. When nil the real backend
	// synthesizes random sources from the plan's schemas, which works
	// for plans made of standard operators only.
	App *apps.App
	// SinkTap, when set, receives every tuple delivered to a sink on the
	// real backend (the sim backend has no per-tuple stream to tap).
	SinkTap func(op string, t *tuple.Tuple)
	// Faults is the deterministic fault plan to inject during the run
	// (see internal/chaos). Both backends expand it with the same
	// Schedule call — the plan, the cluster and the placement strategy
	// fully determine the event schedule, so one plan perturbs the sim
	// and the real engine identically (record FaultSchedule carries the
	// fingerprint). Nil or empty runs fault-free.
	Faults *chaos.Plan
	// Disorder, when set, is stamped onto every source of plans the
	// controller derives from this spec (per-source control stays with
	// the plan's own SourceSpec.Disorder). See core.DisorderSpec.
	Disorder *core.DisorderSpec
	// AllowedLatenessMs is the event-time allowance for out-of-order
	// arrivals: time-policy windows and joins delay firing by this much
	// watermark progress and drop (and count) tuples that arrive later
	// still. Zero keeps the strictest semantics — any tuple behind the
	// watermark is late. Plans whose sources carry a DisorderSpec
	// normally pair it with a matching allowance (bounded disorder with
	// lateness ≥ skew provably drops nothing).
	AllowedLatenessMs int64
}

// Backend executes parallel query plans on one System Under Test.
type Backend interface {
	// Name identifies the backend in records, flags and listings.
	Name() string
	// Run executes the plan on the cluster under the spec and returns
	// the unified run record. Cancelling ctx aborts the run.
	Run(ctx context.Context, plan *core.PQP, cl *cluster.Cluster, spec RunSpec) (*metrics.RunRecord, error)
}

// registry maps backend names to constructors. Factories return fresh
// values so callers can tune one instance without aliasing others.
var registry = map[string]func() Backend{}

// Register adds a backend constructor under its name. Later
// registrations replace earlier ones, letting tests install fakes.
func Register(name string, factory func() Backend) {
	registry[name] = factory
}

// ByName constructs the named backend ("sim", "real").
func ByName(name string) (Backend, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("backend: unknown backend %q (have %v)", name, Names())
	}
	return f(), nil
}

// Names lists the registered backends sorted by name.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// recordID is the stable run-record identifier shared by all backends.
func recordID(backendName string, plan *core.PQP, cl *cluster.Cluster) string {
	return fmt.Sprintf("%s/%s/%s/p%d", backendName, plan.Name, cl.Name, plan.MaxParallelism())
}

// planEventRate sums the plan's nominal source rates for the record.
func planEventRate(plan *core.PQP) float64 {
	var rate float64
	for _, s := range plan.Sources() {
		rate += s.Source.EventRate
	}
	return rate
}
