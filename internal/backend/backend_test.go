package backend

import (
	"context"
	"errors"
	"os"
	"testing"

	"pdspbench/internal/cluster"
	"pdspbench/internal/testutil"
)

func TestMain(m *testing.M) { os.Exit(testutil.RunMain(m)) }

func testCluster() *cluster.Cluster {
	return cluster.NewHomogeneous("parity-m510", cluster.M510, 4)
}

func TestRegistry(t *testing.T) {
	names := Names()
	want := map[string]bool{"sim": false, "real": false}
	for _, n := range names {
		if _, seen := want[n]; seen {
			want[n] = true
		}
	}
	for n, seen := range want {
		if !seen {
			t.Errorf("registry missing built-in backend %q (have %v)", n, names)
		}
	}
	for _, n := range names {
		b, err := ByName(n)
		if err != nil {
			t.Fatalf("ByName(%q): %v", n, err)
		}
		if b.Name() != n {
			t.Errorf("ByName(%q).Name() = %q", n, b.Name())
		}
	}
	if _, err := ByName("bogus"); err == nil {
		t.Error("ByName(bogus) succeeded, want error")
	}
}

func TestRegistryReturnsFreshInstances(t *testing.T) {
	a, err := ByName("sim")
	if err != nil {
		t.Fatal(err)
	}
	b, err := ByName("sim")
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Error("ByName returned the same instance twice; tuning one would alias the other")
	}
}

// TestBackendParity is the cross-backend harness: the standard trio of
// tiny plans (linear, chained-filter, 2-way join) runs on both the sim
// and the real backend, and every RunRecord must be coherent — ordered
// latency percentiles, positive throughput, backend name set — with the
// real engine's tuple counts matching the bounded-source spec exactly.
func TestBackendParity(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)
	cases, err := DefaultParityCases()
	if err != nil {
		t.Fatal(err)
	}
	if len(cases) < 3 {
		t.Fatalf("DefaultParityCases returned %d cases, want >= 3", len(cases))
	}
	sim, err := ByName("sim")
	if err != nil {
		t.Fatal(err)
	}
	real, err := ByName("real")
	if err != nil {
		t.Fatal(err)
	}
	results, err := Parity(context.Background(), []Backend{sim, real}, testCluster(), cases)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(cases) {
		t.Fatalf("got %d results for %d cases", len(results), len(cases))
	}
	for _, r := range results {
		if len(r.Records) != 2 {
			t.Errorf("case %s: %d records, want 2", r.Case, len(r.Records))
		}
		for _, iss := range r.Issues {
			t.Errorf("case %s: %s", r.Case, iss)
		}
	}
	t.Log("\n" + FormatParity(results))
}

func TestSimRunMultipleRuns(t *testing.T) {
	cases, err := DefaultParityCases()
	if err != nil {
		t.Fatal(err)
	}
	spec := cases[0].Spec
	spec.Runs = 3
	b, err := ByName("sim")
	if err != nil {
		t.Fatal(err)
	}
	rec, err := b.Run(context.Background(), cases[0].Plan, testCluster(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Runs != 3 {
		t.Errorf("Runs = %d, want 3", rec.Runs)
	}
	if rec.Backend != "sim" {
		t.Errorf("Backend = %q, want sim", rec.Backend)
	}
	if rec.LatencyP50 <= 0 || rec.Throughput <= 0 {
		t.Errorf("degenerate record: p50=%g tput=%g", rec.LatencyP50, rec.Throughput)
	}
}

func TestRunHonoursCancellation(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)
	cases, err := DefaultParityCases()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, name := range []string{"sim", "real"} {
		b, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := b.Run(ctx, cases[0].Plan, testCluster(), cases[0].Spec); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", name, err)
		}
	}
}

func TestSimDeterminism(t *testing.T) {
	cases, err := DefaultParityCases()
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := ByName("sim")
	b2, _ := ByName("sim")
	r1, err := b1.Run(context.Background(), cases[0].Plan, testCluster(), cases[0].Spec)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := b2.Run(context.Background(), cases[0].Plan, testCluster(), cases[0].Spec)
	if err != nil {
		t.Fatal(err)
	}
	if r1.LatencyP50 != r2.LatencyP50 || r1.Throughput != r2.Throughput {
		t.Errorf("sim backend not deterministic for equal seeds: %+v vs %+v", r1, r2)
	}
}
