package backend

import (
	"context"
	"errors"
	"fmt"

	"pdspbench/internal/chaos"
	"pdspbench/internal/cluster"
	"pdspbench/internal/core"
	"pdspbench/internal/metrics"
	"pdspbench/internal/tuple"
	"pdspbench/internal/workload"
)

// This file is the cross-backend parity harness: it runs the same small
// plans on every requested backend and checks that the simulator's
// shape claims hold against the real engine. The paper calibrates its
// simulator once and then trusts it; this closes the loop continuously
// by asserting the invariants both SUTs must share — coherent latency
// percentiles, positive throughput, identical plan bookkeeping — and,
// for the real backend, exact bounded-source tuple accounting.

// ParityCase is one plan executed on every backend under comparison.
type ParityCase struct {
	// Name labels the case in results ("linear", "2-way-join", …).
	Name string
	// Plan is the parallel query plan both backends execute.
	Plan *core.PQP
	// Spec is the shared run protocol (runs, seed, bounded sources).
	Spec RunSpec
	// WantFaultOp, when non-empty, turns the case into a failure-parity
	// assertion: every backend must ABORT the run with a
	// *chaos.FaultError naming this operator (the fault plan kills its
	// last instance with no restart budget). Completing the run is the
	// parity violation.
	WantFaultOp string
	// WantZeroLateDrops pins the event-time invariant both backends must
	// share for bounded disorder with a matching lateness allowance: the
	// disorder delay never exceeds the watermark skew, so no tuple may be
	// dropped as late. Any non-zero LateDrops is a parity violation.
	WantZeroLateDrops bool
}

// ParityResult is one case's verdict across backends.
type ParityResult struct {
	// Case names the parity case.
	Case string
	// Records holds the unified run record per backend name.
	Records map[string]*metrics.RunRecord
	// Issues lists every violated invariant; empty means parity holds.
	Issues []string
}

// OK reports whether the case passed every check.
func (r *ParityResult) OK() bool { return len(r.Issues) == 0 }

// DefaultParityCases builds the standard trio of tiny plans — linear,
// chained-filter, 2-way join — covering the stateless, windowed and
// two-input operator paths. Sources are bounded and slow enough that
// the real engine finishes in well under a second per run.
func DefaultParityCases() ([]ParityCase, error) {
	params := workload.Params{
		EventRate:  20_000,
		TupleWidth: 3,
		FieldTypes: []tuple.Type{tuple.TypeInt, tuple.TypeInt, tuple.TypeDouble},
		Window: core.WindowSpec{
			Type: core.WindowTumbling, Policy: core.PolicyTime, LengthMs: 250,
		},
		AggFn:        core.AggSum,
		FilterFn:     core.FilterLess,
		Selectivity:  0.5,
		Partition:    core.PartitionRebalance,
		Distribution: "poisson",
	}
	structures := []workload.Structure{
		workload.StructLinear,
		workload.StructTwoFilter,
		workload.StructTwoWayJoin,
	}
	cases := make([]ParityCase, 0, len(structures)+2)
	for _, s := range structures {
		plan, err := workload.Build(s, params)
		if err != nil {
			return nil, fmt.Errorf("backend: parity case %s: %w", s, err)
		}
		plan.SetUniformParallelism(2)
		cases = append(cases, ParityCase{
			Name: string(s),
			Plan: plan,
			Spec: RunSpec{
				Runs:            1,
				Seed:            7,
				EventRate:       params.EventRate,
				TuplesPerSource: 2_000,
				Placement:       cluster.PlaceRoundRobin,
			},
		})
	}
	// Event-time disorder cases: bounded skew on the linear chain (the
	// windowed-aggregate path) and on the 2-way join (the two-input
	// path), with the lateness allowance matching the skew. Bounded
	// disorder delays by at most the watermark skew, so both backends
	// must agree on the strongest pin available: zero late drops.
	disorder := params
	disorder.Disorder = &core.DisorderSpec{Kind: core.DisorderBounded, MaxSkewMs: 50}
	for _, s := range []workload.Structure{workload.StructLinear, workload.StructTwoWayJoin} {
		plan, err := workload.Build(s, disorder)
		if err != nil {
			return nil, fmt.Errorf("backend: parity case disorder-%s: %w", s, err)
		}
		plan.SetUniformParallelism(2)
		cases = append(cases, ParityCase{
			Name: "disorder-" + string(s),
			Plan: plan,
			Spec: RunSpec{
				Runs:              1,
				Seed:              7,
				EventRate:         params.EventRate,
				TuplesPerSource:   2_000,
				Placement:         cluster.PlaceRoundRobin,
				AllowedLatenessMs: disorder.Disorder.MaxSkewMs,
			},
			WantZeroLateDrops: true,
		})
	}
	return cases, nil
}

// FaultParityCases builds the fault-injection parity pair: a budgeted
// crash both backends must recover from, and a kill-every-instance plan
// both must abort with the same typed *chaos.FaultError. The fault
// schedule is expanded from one chaos.Plan by each backend, so the
// recorded FaultSchedule fingerprints must also agree.
func FaultParityCases() ([]ParityCase, error) {
	params := workload.Params{
		EventRate:  20_000,
		TupleWidth: 3,
		FieldTypes: []tuple.Type{tuple.TypeInt, tuple.TypeInt, tuple.TypeDouble},
		Window: core.WindowSpec{
			Type: core.WindowTumbling, Policy: core.PolicyTime, LengthMs: 250,
		},
		AggFn:        core.AggSum,
		FilterFn:     core.FilterLess,
		Selectivity:  0.5,
		Partition:    core.PartitionRebalance,
		Distribution: "poisson",
	}
	plan, err := workload.Build(workload.StructTwoFilter, params)
	if err != nil {
		return nil, fmt.Errorf("backend: fault parity plan: %w", err)
	}
	plan.SetUniformParallelism(2)
	spec := RunSpec{
		Runs:            1,
		Seed:            7,
		EventRate:       params.EventRate,
		TuplesPerSource: 2_000,
		Placement:       cluster.PlaceRoundRobin,
	}
	crash := spec
	crash.Faults = &chaos.Plan{
		Seed: 11,
		Faults: []chaos.Fault{
			{Kind: chaos.KindCrash, Op: "filter1", Instance: 0, At: 0.03},
		},
	}
	kill := spec
	kill.Faults = &chaos.Plan{
		Seed:        11,
		MaxRestarts: -1, // no budget: losing the last instance is fatal
		Faults: []chaos.Fault{
			{Kind: chaos.KindCrash, Op: "filter1", Instance: -1, At: 0.03},
		},
	}
	// Disordered crash-restart: the same budgeted crash with a
	// bounded-skew source and matching lateness, so fault recovery and
	// the event-time plane are exercised together — restarts must still
	// happen and bounded disorder must still drop nothing.
	dparams := params
	dparams.Disorder = &core.DisorderSpec{Kind: core.DisorderBounded, MaxSkewMs: 50}
	dplan, err := workload.Build(workload.StructTwoFilter, dparams)
	if err != nil {
		return nil, fmt.Errorf("backend: fault parity disorder plan: %w", err)
	}
	dplan.SetUniformParallelism(2)
	dcrash := crash
	dcrash.AllowedLatenessMs = dparams.Disorder.MaxSkewMs
	return []ParityCase{
		{Name: "crash-restart", Plan: plan, Spec: crash},
		{Name: "kill-last-instance", Plan: plan, Spec: kill, WantFaultOp: "filter1"},
		{Name: "crash-restart-disorder", Plan: dplan, Spec: dcrash, WantZeroLateDrops: true},
	}, nil
}

// Parity runs every case on every backend and checks the shared
// invariants. It returns one result per case; an error means a backend
// failed to execute at all (which is itself a parity violation of the
// strongest kind, so the harness stops there).
func Parity(ctx context.Context, backends []Backend, cl *cluster.Cluster, cases []ParityCase) ([]ParityResult, error) {
	results := make([]ParityResult, 0, len(cases))
	for _, pc := range cases {
		res := ParityResult{Case: pc.Name, Records: make(map[string]*metrics.RunRecord, len(backends))}
		for _, b := range backends {
			rec, err := b.Run(ctx, pc.Plan, cl, pc.Spec)
			if pc.WantFaultOp != "" {
				res.Issues = append(res.Issues, checkFaultOutcome(b.Name(), pc.WantFaultOp, err)...)
				continue
			}
			if err != nil {
				return nil, fmt.Errorf("backend: parity case %s on %s: %w", pc.Name, b.Name(), err)
			}
			res.Records[b.Name()] = rec
			res.Issues = append(res.Issues, checkCoherent(b.Name(), rec)...)
			if pc.WantZeroLateDrops && rec.LateDrops != 0 {
				res.Issues = append(res.Issues, fmt.Sprintf(
					"%s: %d late drops under bounded disorder with matching lateness; bounded delay can never pass the watermark allowance",
					b.Name(), rec.LateDrops))
			}
			if !pc.Spec.Faults.Empty() {
				res.Issues = append(res.Issues, checkRecovery(b.Name(), rec)...)
			}
			if b.Name() == "real" && pc.Spec.Faults.Empty() {
				res.Issues = append(res.Issues, checkTupleAccounting(pc, rec)...)
			}
		}
		res.Issues = append(res.Issues, checkAgreement(pc, res.Records)...)
		results = append(results, res)
	}
	return results, nil
}

// checkCoherent asserts the invariants any correct SUT's record obeys.
func checkCoherent(name string, rec *metrics.RunRecord) []string {
	var issues []string
	fail := func(format string, args ...any) {
		issues = append(issues, name+": "+fmt.Sprintf(format, args...))
	}
	if rec.Backend != name {
		fail("backend field %q, want %q", rec.Backend, name)
	}
	if rec.LatencyP50 <= 0 {
		fail("p50 %.6fs not positive", rec.LatencyP50)
	}
	if rec.LatencyP50 > rec.LatencyP95 || rec.LatencyP95 > rec.LatencyP99 {
		fail("percentiles not ordered: p50=%.6f p95=%.6f p99=%.6f",
			rec.LatencyP50, rec.LatencyP95, rec.LatencyP99)
	}
	if rec.Throughput <= 0 {
		fail("throughput %.2f not positive", rec.Throughput)
	}
	if rec.TuplesIn == 0 || rec.TuplesOut == 0 {
		fail("tuple accounting empty: in=%d out=%d", rec.TuplesIn, rec.TuplesOut)
	}
	return issues
}

// checkTupleAccounting asserts the real backend consumed exactly what
// the bounded sources were specified to produce.
func checkTupleAccounting(pc ParityCase, rec *metrics.RunRecord) []string {
	tuples := pc.Spec.TuplesPerSource
	if tuples <= 0 {
		tuples = DefaultTuplesPerSource
	}
	var want uint64
	for _, src := range pc.Plan.Sources() {
		want += uint64(src.Parallelism * tuples)
	}
	if rec.TuplesIn != want {
		return []string{fmt.Sprintf("real: consumed %d tuples, bounded sources specify %d", rec.TuplesIn, want)}
	}
	return nil
}

// checkAgreement asserts the backends describe the same experiment:
// identical plan bookkeeping in every record. Metric values legitimately
// differ — that gap is the calibration signal, not a failure.
func checkAgreement(pc ParityCase, records map[string]*metrics.RunRecord) []string {
	var issues []string
	var ref *metrics.RunRecord
	var refName string
	for _, name := range Names() {
		rec, ok := records[name]
		if !ok {
			continue
		}
		if ref == nil {
			ref, refName = rec, name
			continue
		}
		if rec.Workload != ref.Workload || rec.Cluster != ref.Cluster ||
			rec.Category != ref.Category || rec.MaxDegree != ref.MaxDegree {
			issues = append(issues, fmt.Sprintf(
				"%s vs %s: bookkeeping diverges (%s/%s/%s/p%d vs %s/%s/%s/p%d)",
				name, refName,
				rec.Workload, rec.Cluster, rec.Category, rec.MaxDegree,
				ref.Workload, ref.Cluster, ref.Category, ref.MaxDegree))
		}
		if rec.FaultSchedule != ref.FaultSchedule {
			issues = append(issues, fmt.Sprintf(
				"%s vs %s: fault schedules diverge (%s vs %s) — the chaos expansion must be backend-independent",
				name, refName, rec.FaultSchedule, ref.FaultSchedule))
		}
	}
	return issues
}

// checkFaultOutcome asserts a kill-the-last-instance case aborted with
// the typed fault error naming the right operator — on every backend.
func checkFaultOutcome(name, wantOp string, err error) []string {
	if err == nil {
		return []string{fmt.Sprintf("%s: run completed; want *chaos.FaultError for operator %q", name, wantOp)}
	}
	var fe *chaos.FaultError
	if !errors.As(err, &fe) {
		return []string{fmt.Sprintf("%s: run failed with %v (%T); want *chaos.FaultError", name, err, err)}
	}
	if fe.Op != wantOp {
		return []string{fmt.Sprintf("%s: FaultError names operator %q, want %q", name, fe.Op, wantOp)}
	}
	return nil
}

// checkRecovery asserts a fault plan that completes actually exercised
// the fault machinery: events were injected, the schedule fingerprint is
// recorded, and the recovery path ran.
func checkRecovery(name string, rec *metrics.RunRecord) []string {
	var issues []string
	if rec.FaultsInjected == 0 {
		issues = append(issues, name+": fault plan set but no faults injected")
	}
	if rec.FaultSchedule == "" {
		issues = append(issues, name+": fault plan set but no schedule fingerprint recorded")
	}
	if rec.Restarts == 0 {
		issues = append(issues, name+": injected crash produced no restart")
	}
	return issues
}

// FormatParity renders parity results as a compact report for the CLI.
func FormatParity(results []ParityResult) string {
	out := ""
	for _, r := range results {
		status := "ok"
		if !r.OK() {
			status = fmt.Sprintf("FAIL (%d issues)", len(r.Issues))
		}
		out += fmt.Sprintf("%-18s %s\n", r.Case, status)
		for _, name := range Names() {
			rec, ok := r.Records[name]
			if !ok {
				continue
			}
			out += fmt.Sprintf("  %-8s p50=%8.3fms p95=%8.3fms tput=%12.0f ev/s in=%d out=%d\n",
				name, rec.LatencyP50*1000, rec.LatencyP95*1000, rec.Throughput, rec.TuplesIn, rec.TuplesOut)
		}
		for _, iss := range r.Issues {
			out += "  ! " + iss + "\n"
		}
	}
	return out
}
