package controller

import (
	"context"

	"pdspbench/internal/apps"
	"pdspbench/internal/backend"
	"pdspbench/internal/metrics"
)

// Execute runs an application end to end on an arbitrary backend — the
// CLI's exec command with --backend selection. The plan is built at
// spec.EventRate (backend.DefaultEventRate when unset — no more magic
// literals buried in call sites), parallelism is applied uniformly, and
// the application is attached to the spec so the real backend gets its
// generators and UDO implementations. The record lands in the store
// like any other measurement. A nil b uses the controller's backend.
func (c *Controller) Execute(ctx context.Context, b backend.Backend, a *apps.App, parallelism int, spec backend.RunSpec) (*metrics.RunRecord, error) {
	if spec.EventRate <= 0 {
		spec.EventRate = backend.DefaultEventRate
	}
	plan := a.Build(spec.EventRate)
	if parallelism > 1 {
		plan.SetUniformParallelism(parallelism)
	}
	if spec.Disorder != nil {
		for _, src := range plan.Sources() {
			d := *spec.Disorder
			src.Source.Disorder = &d
		}
	}
	spec.App = a
	run := *c
	if b != nil {
		run.Backend = b
	}
	return run.MeasureSpec(ctx, plan, run.Homogeneous(), spec)
}

// ExecuteReal runs an application on the real in-process engine (the
// SUT role) with bounded sources — the functional counterpart of the
// simulator-based Measure.
func (c *Controller) ExecuteReal(ctx context.Context, a *apps.App, parallelism int, spec backend.RunSpec) (*metrics.RunRecord, error) {
	return c.Execute(ctx, &backend.Real{}, a, parallelism, spec)
}
