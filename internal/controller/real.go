package controller

import (
	"context"

	"pdspbench/internal/apps"
	"pdspbench/internal/engine"
)

// ExecuteReal runs an application end to end on the real in-process
// engine (the SUT role) with bounded sources — the functional
// counterpart of the simulator-based Measure, used by the CLI's exec
// command and the examples.
func ExecuteReal(a *apps.App, tuplesPerSource, parallelism int, seed int64) (*engine.Report, error) {
	plan := a.Build(100_000)
	if parallelism > 1 {
		plan.SetUniformParallelism(parallelism)
	}
	rt, err := engine.New(plan, engine.Options{
		Sources: a.Sources(seed, tuplesPerSource),
		UDOs:    a.UDOs(),
	})
	if err != nil {
		return nil, err
	}
	return rt.Run(context.Background())
}
