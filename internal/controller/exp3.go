package controller

import (
	"context"
	"fmt"
	"time"

	"pdspbench/internal/backend"
	"pdspbench/internal/cluster"
	"pdspbench/internal/metrics"
	"pdspbench/internal/ml"
	"pdspbench/internal/ml/feature"
	"pdspbench/internal/mlmanager"
	"pdspbench/internal/workload"
)

// SeenStructures are the query structures the paper's Figure 6 trains on
// ("seen (linear, 2-way and 3-way join)"); every other synthetic
// structure is unseen.
var SeenStructures = []workload.Structure{
	workload.StructLinear, workload.StructTwoWayJoin, workload.StructThreeJoin,
}

// UnseenStructures are the remaining synthetic structures.
func UnseenStructures() []workload.Structure {
	seen := map[workload.Structure]bool{}
	for _, s := range SeenStructures {
		seen[s] = true
	}
	var out []workload.Structure
	for _, s := range workload.Structures {
		if !seen[s] {
			out = append(out, s)
		}
	}
	return out
}

// Corpus is a labeled training corpus with its collection cost — the
// workload-execution time that dominates the paper's training-overhead
// comparison (Figure 6b).
type Corpus struct {
	Strategy  string
	Dataset   *ml.Dataset
	BuildTime time.Duration
}

// TimeFor estimates the collection time of the first n queries (labeling
// cost is per-query, so it scales linearly).
func (c *Corpus) TimeFor(n int) time.Duration {
	if c.Dataset.Len() == 0 {
		return 0
	}
	if n > c.Dataset.Len() {
		n = c.Dataset.Len()
	}
	return time.Duration(float64(c.BuildTime) * float64(n) / float64(c.Dataset.Len()))
}

// BuildCorpus generates n labeled examples: for each query it draws
// random data/query parameters (domain randomization), builds one of the
// given structures, lets the named parallelism-enumeration strategy
// assign degrees, executes the plan on the cluster simulator and labels
// the example with the measured median latency. Event rates are capped
// at 500k events/s to bound labeling cost.
func (c *Controller) BuildCorpus(ctx context.Context, strategyName string, structures []workload.Structure, n int, cl *cluster.Cluster, seed int64) (*Corpus, error) {
	if len(structures) == 0 {
		structures = workload.Structures
	}
	enum := workload.NewEnumerator(seed)
	enum.MaxEventRate = 500_000
	strategy, err := workload.StrategyByName(strategyName, enum.Rand())
	if err != nil {
		return nil, err
	}
	// Labeling is one simulated run per query to bound collection cost.
	sim := &backend.Sim{Cfg: c.Cfg}
	start := time.Now()
	ds := &ml.Dataset{}
	for i := 0; i < n; i++ {
		st := structures[i%len(structures)]
		base, err := workload.Build(st, enum.RandomParams())
		if err != nil {
			return nil, fmt.Errorf("controller: corpus query %d: %w", i, err)
		}
		variants := strategy.Enumerate(base, cl, 1)
		if len(variants) == 0 {
			return nil, fmt.Errorf("controller: strategy %q produced no variant", strategyName)
		}
		plan := variants[0]
		rec, err := sim.Run(ctx, plan, cl, backend.RunSpec{
			Runs: 1, Seed: seed + int64(i), Placement: c.Placement,
		})
		if err != nil {
			return nil, err
		}
		ds.Examples = append(ds.Examples, ml.Example{
			Flat:      feature.EncodeFlat(plan, cl),
			Graph:     feature.EncodeGraph(plan, cl),
			Latency:   rec.LatencyP50,
			Structure: plan.Structure,
		})
	}
	return &Corpus{Strategy: strategyName, Dataset: ds, BuildTime: time.Since(start)}, nil
}

// Exp3Models regenerates Figure 5: the per-structure median q-error of
// the four learned cost models, trained fairly (same corpus, same split,
// same early stopping) by the ML Manager.
func (c *Controller) Exp3Models(corpus *ml.Dataset, opts ml.TrainOptions) (*metrics.Figure, []*mlmanager.Evaluation, error) {
	mgr := mlmanager.New(opts)
	evs, err := mgr.Compare(mlmanager.DefaultModels(), corpus)
	if err != nil {
		return nil, nil, err
	}
	fig := &metrics.Figure{
		ID:     metrics.FigCostModels,
		Title:  "Learned cost models: median q-error per synthetic query structure",
		XLabel: "structure",
		YLabel: "median q-error",
	}
	for _, ev := range evs {
		series := metrics.Series{Label: ev.Model}
		for _, st := range workload.Structures {
			if q, ok := ev.PerStructure[string(st)]; ok {
				series.Points = append(series.Points, metrics.Point{X: string(st), Y: q})
			}
		}
		fig.Series = append(fig.Series, series)
	}
	return fig, evs, nil
}

// StrategyCurves is the Figure 6 result: per-strategy learning curves
// (6a) and total time — corpus collection plus training — per training
// size (6b).
type StrategyCurves struct {
	Fig6a  *metrics.Figure
	Fig6b  *metrics.Figure
	Curves map[string][]*mlmanager.CurvePoint
	// TotalTime[strategy][i] matches sizes[i]: collection + training.
	TotalTime map[string][]time.Duration
	Sizes     []int
}

// Exp3Strategies regenerates Figure 6: GNN cost models are trained on
// corpora enumerated by the rule-based and random strategies at growing
// training-set sizes, and evaluated on fixed seen-structure and
// unseen-structure test sets (both enumerated rule-based, since
// meaningful parallelism configurations are what deployments run). The
// rule-based curve reaches a given accuracy with roughly a third of the
// queries — and hence roughly a third of the collection+training time —
// reproducing O9.
func (c *Controller) Exp3Strategies(ctx context.Context, sizes []int, testN int, opts ml.TrainOptions) (*StrategyCurves, error) {
	if len(sizes) == 0 {
		sizes = []int{25, 50, 100, 200, 400}
	}
	if testN <= 0 {
		testN = 45
	}
	cl := c.Homogeneous()
	maxSize := sizes[len(sizes)-1]
	// Corpus sized for the largest training cut plus the validation split.
	corpusN := maxSize*100/85 + 1

	seenTest, err := c.BuildCorpus(ctx, "rule-based", SeenStructures, testN, cl, c.Seed+1000)
	if err != nil {
		return nil, err
	}
	unseenTest, err := c.BuildCorpus(ctx, "rule-based", UnseenStructures(), testN, cl, c.Seed+2000)
	if err != nil {
		return nil, err
	}

	mgr := mlmanager.New(opts)
	gnnFactory := mlmanager.DefaultModels()[3]
	out := &StrategyCurves{
		Curves:    map[string][]*mlmanager.CurvePoint{},
		TotalTime: map[string][]time.Duration{},
		Sizes:     sizes,
		Fig6a: &metrics.Figure{
			ID:     metrics.FigEnumAccuracy,
			Title:  "GNN accuracy vs training queries, rule-based vs random enumeration",
			XLabel: "training queries",
			YLabel: "median q-error",
		},
		Fig6b: &metrics.Figure{
			ID:     metrics.FigEnumTime,
			Title:  "Total time (collection + training) vs training queries",
			XLabel: "training queries",
			YLabel: "seconds",
		},
	}
	for _, strat := range []string{"rule-based", "random"} {
		corpus, err := c.BuildCorpus(ctx, strat, SeenStructures, corpusN, cl, c.Seed+3000)
		if err != nil {
			return nil, err
		}
		points, err := mgr.LearningCurve(gnnFactory, corpus.Dataset, sizes, seenTest.Dataset, unseenTest.Dataset)
		if err != nil {
			return nil, err
		}
		out.Curves[strat] = points
		seen := metrics.Series{Label: strat + "/seen"}
		unseen := metrics.Series{Label: strat + "/unseen"}
		times := metrics.Series{Label: strat}
		var totals []time.Duration
		for _, p := range points {
			x := fmt.Sprintf("%d", p.TrainQueries)
			seen.Points = append(seen.Points, metrics.Point{X: x, Y: p.SeenMedianQ})
			unseen.Points = append(unseen.Points, metrics.Point{X: x, Y: p.UnseenMedianQ})
			total := corpus.TimeFor(p.TrainQueries) + p.TrainTime
			totals = append(totals, total)
			times.Points = append(times.Points, metrics.Point{X: x, Y: total.Seconds()})
		}
		out.TotalTime[strat] = totals
		out.Fig6a.Series = append(out.Fig6a.Series, seen, unseen)
		out.Fig6b.Series = append(out.Fig6b.Series, times)
	}
	return out, nil
}

// QueriesToReach returns the smallest training size whose seen-set
// median q-error is at or below target, or -1 if never reached — the
// data-efficiency statistic behind O9 ("requires only ~⅓ of the
// queries").
func QueriesToReach(points []*mlmanager.CurvePoint, target float64) int {
	for _, p := range points {
		if p.SeenMedianQ <= target {
			return p.TrainQueries
		}
	}
	return -1
}
