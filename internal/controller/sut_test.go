package controller

import (
	"context"
	"testing"

	"pdspbench/internal/simengine"
	"pdspbench/internal/storage"
	"pdspbench/internal/workload"
)

func TestProfilesRegistered(t *testing.T) {
	profs := simengine.Profiles()
	if len(profs) != 3 {
		t.Fatalf("profiles = %d, want flink/storm/microbatch", len(profs))
	}
	for _, p := range profs {
		if p.Config.TupleCost <= 0 || p.Config.MsgCost <= 0 {
			t.Errorf("%s: incomplete calibration %+v", p.Name, p.Config)
		}
	}
	if _, ok := simengine.ProfileByName("flink"); !ok {
		t.Error("flink profile missing")
	}
	if _, ok := simengine.ProfileByName("heron"); ok {
		t.Error("unknown profile resolved")
	}
}

func TestExpSUTComparisonShapes(t *testing.T) {
	c := tiny()
	fig, err := c.ExpSUTComparison(context.Background(), nil, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 3 {
		t.Fatalf("series = %d, want one per SUT", len(fig.Series))
	}
	flink := fig.SeriesByLabel("flink")
	storm := fig.SeriesByLabel("storm")
	if flink == nil || storm == nil {
		t.Fatal("missing SUT series")
	}
	// Every SUT must measure every structure with positive latency.
	for _, s := range fig.Series {
		if len(s.Points) != 3 {
			t.Errorf("%s measured %d structures", s.Label, len(s.Points))
		}
		for _, p := range s.Points {
			if p.Y <= 0 {
				t.Errorf("%s/%s latency %v", s.Label, p.X, p.Y)
			}
		}
	}
	// At high parallelism the acker-based profile pays more for the
	// message-heavy join than the pipelined profile.
	fj, _ := flink.Get(string(workload.StructThreeJoin))
	sj, _ := storm.Get(string(workload.StructThreeJoin))
	if sj <= fj {
		t.Errorf("storm-profile 3-way join (%.1f ms) not above flink profile (%.1f ms)", sj, fj)
	}
}

func TestExpSUTComparisonDoesNotPolluteStore(t *testing.T) {
	c := tiny()
	// Even with a store configured, SUT sweeps must not write records.
	dir := t.TempDir()
	st, err := storage.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	c.Store = st
	if _, err := c.ExpSUTComparison(context.Background(), []workload.Structure{workload.StructLinear}, 4); err != nil {
		t.Fatal(err)
	}
	n, err := st.Count("runs")
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("SUT sweep stored %d runs", n)
	}
}
