package controller

import (
	"context"
	"testing"

	"pdspbench/internal/ml"
	"pdspbench/internal/stats"
	"pdspbench/internal/workload"
)

func trainTestPredictor(t *testing.T, c *Controller) *Predictor {
	t.Helper()
	corpus, err := c.BuildCorpus(context.Background(), "random", workload.Structures, 150, c.Homogeneous(), 21)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := c.TrainPredictor(corpus.Dataset, c.Homogeneous(),
		ml.TrainOptions{MaxEpochs: 60, Patience: 8, LearningRate: 3e-3})
	if err != nil {
		t.Fatal(err)
	}
	return pred
}

func TestPredictorAccuracyOnFreshPlans(t *testing.T) {
	if testing.Short() {
		t.Skip("predictor training is slow")
	}
	c := tiny()
	pred := trainTestPredictor(t, c)
	var truths, preds []float64
	for _, s := range []workload.Structure{workload.StructLinear, workload.StructTwoWayJoin, workload.StructThreeJoin} {
		for _, degree := range []int{2, 16} {
			plan, err := c.SyntheticPlan(s, degree)
			if err != nil {
				t.Fatal(err)
			}
			p, err := pred.Predict(plan)
			if err != nil {
				t.Fatal(err)
			}
			rec, err := c.Measure(context.Background(), plan, c.Homogeneous())
			if err != nil {
				t.Fatal(err)
			}
			truths = append(truths, rec.LatencyP50)
			preds = append(preds, p)
		}
	}
	if q := stats.MedianQError(truths, preds); q > 3 {
		t.Errorf("predictor median q-error %v on fresh plans; model unusable for inference", q)
	}
}

func TestPredictorRejectsInvalidPlanAndTinyCorpus(t *testing.T) {
	c := tiny()
	if _, err := c.TrainPredictor(&ml.Dataset{}, c.Homogeneous(), ml.TrainOptions{}); err == nil {
		t.Error("TrainPredictor accepted empty corpus")
	}
}

func TestPickParallelismAvoidsExtremes(t *testing.T) {
	if testing.Short() {
		t.Skip("predictor training is slow")
	}
	c := tiny()
	pred := trainTestPredictor(t, c)
	// A multi-way join at 500k events/s saturates at degree 1 — the
	// corpus contains that regime, so the tuned degree must not be 1.
	plan, err := c.SyntheticPlan(workload.StructThreeJoin, 1)
	if err != nil {
		t.Fatal(err)
	}
	degree, lat, err := pred.PickParallelism(plan, []int{1, 8, 32})
	if err != nil {
		t.Fatal(err)
	}
	if degree == 1 {
		t.Errorf("tuner picked degree 1 for a saturating UDO app (predicted %.3fs)", lat)
	}
	if lat <= 0 {
		t.Errorf("predicted latency %v", lat)
	}
}
