package controller

import (
	"context"
	"testing"

	"pdspbench/internal/cluster"
	"pdspbench/internal/core"
	"pdspbench/internal/ml"
	"pdspbench/internal/mlmanager"
	"pdspbench/internal/storage"
	"pdspbench/internal/workload"
)

// tiny returns a controller with minimal simulation fidelity for unit
// tests; shape assertions use Fast() in the observation tests.
func tiny() *Controller {
	c := Fast()
	c.Cfg.Duration = 6
	c.Cfg.SourceBatches = 48
	return c
}

func TestMeasureProducesRecord(t *testing.T) {
	c := tiny()
	plan, err := c.SyntheticPlan(workload.StructLinear, 8)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := c.Measure(context.Background(), plan, c.Homogeneous())
	if err != nil {
		t.Fatal(err)
	}
	if rec.LatencyP50 <= 0 {
		t.Errorf("latency %v, want > 0", rec.LatencyP50)
	}
	if rec.Category != "M" {
		t.Errorf("category %q, want M for degree 8", rec.Category)
	}
	if rec.Workload != string(workload.StructLinear) {
		t.Errorf("workload %q", rec.Workload)
	}
	if rec.EventRate != c.EventRate {
		t.Errorf("event rate %v, want %v", rec.EventRate, c.EventRate)
	}
}

func TestMeasureStoresRuns(t *testing.T) {
	c := tiny()
	st, err := storage.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c.Store = st
	plan, _ := c.SyntheticPlan(workload.StructLinear, 2)
	if _, err := c.Measure(context.Background(), plan, c.Homogeneous()); err != nil {
		t.Fatal(err)
	}
	n, err := st.Count("runs")
	if err != nil || n != 1 {
		t.Errorf("stored %d runs (%v), want 1", n, err)
	}
}

func TestClusterProvisioning(t *testing.T) {
	c := New()
	if got := c.Homogeneous(); got.IsHeterogeneous() || len(got.Nodes) != 5 {
		t.Errorf("Homogeneous = %v", got)
	}
	if got := c.Mixed(); !got.IsHeterogeneous() {
		t.Error("Mixed cluster is not heterogeneous")
	}
	if c.HeteroEpyc().Nodes[0].Type.Name != "c6525_25g" {
		t.Error("HeteroEpyc wrong node type")
	}
	if c.HeteroHaswell().Nodes[0].Type.Name != "c6320" {
		t.Error("HeteroHaswell wrong node type")
	}
}

func TestExp1SyntheticFigureShape(t *testing.T) {
	c := tiny()
	cats := []core.ParallelismCategory{core.CatXS, core.CatM}
	structs := []workload.Structure{workload.StructLinear, workload.StructTwoWayJoin}
	fig, err := c.Exp1Synthetic(context.Background(), cats, structs)
	if err != nil {
		t.Fatal(err)
	}
	if fig.ID != "fig3-top" {
		t.Errorf("figure ID %q", fig.ID)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("series = %d, want one per category", len(fig.Series))
	}
	for _, s := range fig.Series {
		if len(s.Points) != 2 {
			t.Fatalf("series %s has %d points, want one per structure", s.Label, len(s.Points))
		}
		for _, p := range s.Points {
			if p.Y <= 0 {
				t.Errorf("non-positive latency for %s/%s", s.Label, p.X)
			}
		}
	}
}

func TestExp1RealWorldFigure(t *testing.T) {
	c := tiny()
	fig, err := c.Exp1RealWorld(context.Background(), []core.ParallelismCategory{core.CatM}, []string{"WC", "SD"})
	if err != nil {
		t.Fatal(err)
	}
	if fig.SeriesByLabel("M") == nil {
		t.Fatal("missing M series")
	}
	if _, ok := fig.SeriesByLabel("M").Get("SD"); !ok {
		t.Error("missing SD point")
	}
}

func TestExp2Figures(t *testing.T) {
	c := tiny()
	fig, err := c.Exp2RealWorld(context.Background(), []string{"SD"})
	if err != nil {
		t.Fatal(err)
	}
	// One series per cluster: m510, c6525_25g, c6320, mixed.
	if len(fig.Series) != 4 {
		t.Fatalf("fig4-top series = %d, want 4", len(fig.Series))
	}
	fig2, err := c.Exp2Synthetic(context.Background(), []core.ParallelismCategory{core.CatM}, []workload.Structure{workload.StructLinear})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig2.Series) != 4 {
		t.Fatalf("fig4-bottom series = %d, want 4", len(fig2.Series))
	}
	for _, s := range fig2.Series {
		if y, ok := s.Get("M"); !ok || y <= 0 {
			t.Errorf("series %s missing M point", s.Label)
		}
	}
}

func TestBuildCorpusLabelsExamples(t *testing.T) {
	c := tiny()
	corpus, err := c.BuildCorpus(context.Background(), "rule-based", SeenStructures, 9, c.Homogeneous(), 7)
	if err != nil {
		t.Fatal(err)
	}
	if corpus.Dataset.Len() != 9 {
		t.Fatalf("corpus = %d examples, want 9", corpus.Dataset.Len())
	}
	if err := ml.CheckDataset(corpus.Dataset, true, true); err != nil {
		t.Errorf("corpus incomplete: %v", err)
	}
	structs := map[string]bool{}
	for _, e := range corpus.Dataset.Examples {
		if e.Latency <= 0 {
			t.Errorf("example labeled with latency %v", e.Latency)
		}
		structs[e.Structure] = true
	}
	if len(structs) != 3 {
		t.Errorf("corpus covers %d structures, want the 3 seen ones", len(structs))
	}
	if corpus.BuildTime <= 0 {
		t.Error("corpus build time not recorded")
	}
	// TimeFor scales linearly and clamps.
	if corpus.TimeFor(3) >= corpus.TimeFor(9) {
		t.Error("TimeFor not increasing in n")
	}
	if corpus.TimeFor(100) != corpus.BuildTime {
		t.Error("TimeFor should clamp to full build time")
	}
}

func TestBuildCorpusUnknownStrategy(t *testing.T) {
	c := tiny()
	if _, err := c.BuildCorpus(context.Background(), "nope", nil, 2, c.Homogeneous(), 1); err == nil {
		t.Error("unknown strategy accepted")
	}
}

func TestUnseenStructuresDisjointFromSeen(t *testing.T) {
	seen := map[workload.Structure]bool{}
	for _, s := range SeenStructures {
		seen[s] = true
	}
	unseen := UnseenStructures()
	if len(unseen)+len(SeenStructures) != len(workload.Structures) {
		t.Errorf("seen+unseen = %d, want %d", len(unseen)+len(SeenStructures), len(workload.Structures))
	}
	for _, s := range unseen {
		if seen[s] {
			t.Errorf("structure %s both seen and unseen", s)
		}
	}
}

func TestExp3ModelsProducesFig5(t *testing.T) {
	c := tiny()
	corpus, err := c.BuildCorpus(context.Background(), "random", workload.Structures, 60, c.Homogeneous(), 3)
	if err != nil {
		t.Fatal(err)
	}
	fig, evs, err := c.Exp3Models(corpus.Dataset, ml.TrainOptions{MaxEpochs: 15, Patience: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 4 {
		t.Fatalf("models evaluated = %d, want 4", len(evs))
	}
	if len(fig.Series) != 4 {
		t.Fatalf("fig5 series = %d, want 4", len(fig.Series))
	}
	for _, s := range fig.Series {
		if len(s.Points) == 0 {
			t.Errorf("model %s has no per-structure points", s.Label)
		}
	}
}

func TestExp3StrategiesSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("exp3 strategies is slow")
	}
	c := tiny()
	curves, err := c.Exp3Strategies(context.Background(), []int{10, 30}, 9, ml.TrainOptions{MaxEpochs: 12, Patience: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, strat := range []string{"rule-based", "random"} {
		pts := curves.Curves[strat]
		if len(pts) != 2 {
			t.Fatalf("%s: %d curve points, want 2", strat, len(pts))
		}
		if len(curves.TotalTime[strat]) != 2 {
			t.Fatalf("%s: missing total time", strat)
		}
		for _, d := range curves.TotalTime[strat] {
			if d <= 0 {
				t.Errorf("%s: non-positive total time", strat)
			}
		}
	}
	if len(curves.Fig6a.Series) != 4 { // 2 strategies × seen/unseen
		t.Errorf("fig6a series = %d, want 4", len(curves.Fig6a.Series))
	}
	if len(curves.Fig6b.Series) != 2 {
		t.Errorf("fig6b series = %d, want 2", len(curves.Fig6b.Series))
	}
}

func TestQueriesToReach(t *testing.T) {
	pts := []*mlmanager.CurvePoint{
		{TrainQueries: 25, SeenMedianQ: 3.0},
		{TrainQueries: 100, SeenMedianQ: 1.4},
		{TrainQueries: 400, SeenMedianQ: 1.2},
	}
	if got := QueriesToReach(pts, 1.5); got != 100 {
		t.Errorf("QueriesToReach(1.5) = %d, want 100", got)
	}
	if got := QueriesToReach(pts, 1.0); got != -1 {
		t.Errorf("QueriesToReach(1.0) = %d, want -1", got)
	}
}

func TestRuleBasedNeverExceedsCoreBudget(t *testing.T) {
	c := tiny()
	cl := c.Homogeneous()
	corpus, err := c.BuildCorpus(context.Background(), "rule-based", SeenStructures, 6, cl, 11)
	if err != nil {
		t.Fatal(err)
	}
	_ = corpus
	// Rule-based corpora must contain no plan exceeding the cluster's
	// core budget; re-enumerate to inspect degrees directly.
	enum := workload.NewEnumerator(11)
	strat, _ := workload.StrategyByName("rule-based", enum.Rand())
	base, err := workload.Build(workload.StructTwoWayJoin, enum.RandomParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range strat.Enumerate(base, cl, 10) {
		if v.MaxParallelism() > cl.TotalCores() {
			t.Errorf("rule-based degree %d exceeds %d cores", v.MaxParallelism(), cl.TotalCores())
		}
	}
}

func TestPlacementStrategyConfigurable(t *testing.T) {
	c := tiny()
	c.Placement = cluster.PlaceLeastLoaded
	plan, _ := c.SyntheticPlan(workload.StructLinear, 4)
	if _, err := c.Measure(context.Background(), plan, c.Homogeneous()); err != nil {
		t.Fatalf("least-loaded placement failed: %v", err)
	}
}
