package controller

import (
	"context"
	"testing"

	"pdspbench/internal/workload"
)

func TestExpPartitioningSkewHurtsHash(t *testing.T) {
	c := tiny()
	fig, err := c.ExpPartitioning(context.Background(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("series = %d, want poisson and zipf", len(fig.Series))
	}
	pois := fig.SeriesByLabel("poisson")
	zipf := fig.SeriesByLabel("zipf")
	for _, part := range []string{"forward", "rebalance", "hashing"} {
		if _, ok := pois.Get(part); !ok {
			t.Errorf("missing %s point", part)
		}
	}
	// Under skew, hash partitioning's hot instance must cost at least as
	// much as under uniform keys.
	hashU, _ := pois.Get("hashing")
	hashZ, _ := zipf.Get("hashing")
	if hashZ < hashU*0.95 {
		t.Errorf("zipf hashing latency %.1f below uniform %.1f; skew should not help", hashZ, hashU)
	}
}

func TestExpAutoscalerComparesMethods(t *testing.T) {
	c := tiny()
	fig, err := c.ExpAutoscaler(context.Background(), workload.StructTwoWayJoin)
	if err != nil {
		t.Fatal(err)
	}
	lat := fig.SeriesByLabel("median latency (ms)")
	inst := fig.SeriesByLabel("instances deployed")
	if lat == nil || inst == nil {
		t.Fatal("missing series")
	}
	for _, method := range []string{"rule-based", "autoscaled", "fixed-XS", "fixed-M", "fixed-XXL"} {
		if _, ok := lat.Get(method); !ok {
			t.Errorf("latency missing for %s", method)
		}
	}
	// Both informed methods must beat the under-provisioned XS baseline.
	xs, _ := lat.Get("fixed-XS")
	rule, _ := lat.Get("rule-based")
	auto, _ := lat.Get("autoscaled")
	if rule >= xs || auto >= xs {
		t.Errorf("informed sizing (rule=%.1f auto=%.1f) not better than fixed-XS %.1f", rule, auto, xs)
	}
	// And they must deploy far fewer instances than the XXL sweep point.
	xxlInst, _ := inst.Get("fixed-XXL")
	autoInst, _ := inst.Get("autoscaled")
	if autoInst >= xxlInst/2 {
		t.Errorf("autoscaler deploys %v instances vs fixed-XXL %v; should be far leaner", autoInst, xxlInst)
	}
}
