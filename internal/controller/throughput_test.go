package controller

import (
	"context"
	"testing"

	"pdspbench/internal/core"
	"pdspbench/internal/workload"
)

func TestMaxSustainableRateIncreasesWithParallelism(t *testing.T) {
	c := tiny()
	cl := c.Homogeneous()
	build := func(degree int) func(rate float64) (*core.PQP, error) {
		return func(rate float64) (*core.PQP, error) {
			p := c.baseParams()
			p.EventRate = rate
			plan, err := workload.Build(workload.StructTwoWayJoin, p)
			if err != nil {
				return nil, err
			}
			plan.SetUniformParallelism(degree)
			return plan, nil
		}
	}
	r1, err := c.MaxSustainableRate(context.Background(), build(1), cl, 1_000, 4_000_000)
	if err != nil {
		t.Fatal(err)
	}
	r8, err := c.MaxSustainableRate(context.Background(), build(8), cl, 1_000, 4_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if r8 <= r1 {
		t.Errorf("sustainable rate did not grow with parallelism: p1=%.0f p8=%.0f", r1, r8)
	}
	if r1 < 1_000 || r8 > 4_000_000 {
		t.Errorf("rates outside search range: %v, %v", r1, r8)
	}
}

func TestMaxSustainableRateErrors(t *testing.T) {
	c := tiny()
	cl := c.Homogeneous()
	build := func(rate float64) (*core.PQP, error) {
		p := c.baseParams()
		p.EventRate = rate
		plan, err := workload.Build(workload.StructLinear, p)
		if err != nil {
			return nil, err
		}
		plan.SetUniformParallelism(1)
		return plan, nil
	}
	if _, err := c.MaxSustainableRate(context.Background(), build, cl, 0, 100); err == nil {
		t.Error("invalid range accepted")
	}
	if _, err := c.MaxSustainableRate(context.Background(), build, cl, 100, 50); err == nil {
		t.Error("inverted range accepted")
	}
}

func TestExpThroughputSeries(t *testing.T) {
	c := tiny()
	cats := []core.ParallelismCategory{core.CatXS, core.CatM}
	fig, err := c.ExpThroughput(context.Background(), "", workload.StructLinear, cats)
	if err != nil {
		t.Fatal(err)
	}
	s := fig.SeriesByLabel("sustainable rate")
	if s == nil || len(s.Points) != 2 {
		t.Fatalf("series = %v", fig.Series)
	}
	xs, _ := s.Get("XS")
	m, _ := s.Get("M")
	if m < xs {
		t.Errorf("throughput at M (%.0f) below XS (%.0f)", m, xs)
	}
}
