package controller

// Cross-backend consistency: the real engine (internal/engine) and the
// cluster simulator (internal/simengine) are two execution backends for
// the same PQP model. They measure different regimes (wall-clock laptop
// scale vs modelled cluster scale), but they must agree on orderings —
// which application does more work per tuple, which plan is heavier —
// or the simulator's cost calibration is fiction.

import (
	"context"
	"runtime"
	"testing"

	"pdspbench/internal/apps"
	"pdspbench/internal/backend"
)

// perTupleCost runs an app on the real backend unthrottled and returns
// wall-clock seconds per input tuple — a direct measure of per-tuple
// CPU work.
func perTupleCost(t *testing.T, c *Controller, code string, tuples int) float64 {
	t.Helper()
	app, err := apps.ByCode(code)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := c.ExecuteReal(context.Background(), app, 1, backend.RunSpec{
		Seed:            3,
		TuplesPerSource: tuples,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rec.TuplesIn == 0 {
		t.Fatalf("%s consumed nothing", code)
	}
	return rec.ElapsedSec / float64(rec.TuplesIn)
}

func TestRealEngineAndSimulatorAgreeOnAppOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-validation is slow")
	}
	// Real engine: per-tuple work of the data-intensive SA vs the light
	// TPCH pipeline.
	c := tiny()
	saReal := perTupleCost(t, c, "SA", 20_000)
	tpchReal := perTupleCost(t, c, "TPCH", 20_000)
	if saReal <= tpchReal {
		t.Skipf("real-engine costs inverted on this machine (SA %.2g vs TPCH %.2g); machine noise", saReal, tpchReal)
	}

	// Simulator: under identical load and parallelism, the app with more
	// per-tuple work must show the higher latency.
	sa := measureApp(t, c, "SA", 2)
	tpch := measureApp(t, c, "TPCH", 2)
	if sa <= tpch {
		t.Errorf("simulator inverts the real engine's ordering: SA %.3fs vs TPCH %.3fs", sa, tpch)
	}
}

func TestRealEngineParallelismSpeedsUpHeavyApp(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-validation is slow")
	}
	if runtime.GOMAXPROCS(0) < 2 {
		// A real parallel speedup needs real cores. On a single-P
		// runtime, four instances time-slice one core, so the best
		// par-4 can do is tie par-1 — watermark-driven windows fire per
		// marker instead of scanning panes per arrival, which removed
		// the per-instance work that parallelism used to split.
		t.Skip("parallel speedup is unmeasurable with GOMAXPROCS=1")
	}
	// The real engine must show the same qualitative effect the
	// simulator produces for Fig 3: a data-intensive app finishes a fixed
	// workload faster with more parallel instances.
	app, err := apps.ByCode("SA")
	if err != nil {
		t.Fatal(err)
	}
	c := tiny()
	spec := backend.RunSpec{Seed: 5, TuplesPerSource: 30_000}
	rec1, err := c.ExecuteReal(context.Background(), app, 1, spec)
	if err != nil {
		t.Fatal(err)
	}
	rec4, err := c.ExecuteReal(context.Background(), app, 4, spec)
	if err != nil {
		t.Fatal(err)
	}
	if rec4.ElapsedSec >= rec1.ElapsedSec {
		t.Errorf("parallelism 4 (%.3fs) not faster than 1 (%.3fs) for a CPU-heavy app", rec4.ElapsedSec, rec1.ElapsedSec)
	}
}
