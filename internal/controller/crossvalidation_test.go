package controller

// Cross-backend consistency: the real engine (internal/engine) and the
// cluster simulator (internal/simengine) are two execution backends for
// the same PQP model. They measure different regimes (wall-clock laptop
// scale vs modelled cluster scale), but they must agree on orderings —
// which application does more work per tuple, which plan is heavier —
// or the simulator's cost calibration is fiction.

import (
	"testing"

	"pdspbench/internal/apps"
)

// perTupleCost runs an app on the real engine unthrottled and returns
// wall-clock seconds per input tuple — a direct measure of per-tuple
// CPU work.
func perTupleCost(t *testing.T, code string, tuples int) float64 {
	t.Helper()
	app, err := apps.ByCode(code)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ExecuteReal(app, tuples, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TuplesIn == 0 {
		t.Fatalf("%s consumed nothing", code)
	}
	return rep.Elapsed.Seconds() / float64(rep.TuplesIn)
}

func TestRealEngineAndSimulatorAgreeOnAppOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-validation is slow")
	}
	// Real engine: per-tuple work of the data-intensive SA vs the light
	// TPCH pipeline.
	saReal := perTupleCost(t, "SA", 20_000)
	tpchReal := perTupleCost(t, "TPCH", 20_000)
	if saReal <= tpchReal {
		t.Skipf("real-engine costs inverted on this machine (SA %.2g vs TPCH %.2g); machine noise", saReal, tpchReal)
	}

	// Simulator: under identical load and parallelism, the app with more
	// per-tuple work must show the higher latency.
	c := tiny()
	sa := measureApp(t, c, "SA", 2)
	tpch := measureApp(t, c, "TPCH", 2)
	if sa <= tpch {
		t.Errorf("simulator inverts the real engine's ordering: SA %.3fs vs TPCH %.3fs", sa, tpch)
	}
}

func TestRealEngineParallelismSpeedsUpHeavyApp(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-validation is slow")
	}
	// The real engine must show the same qualitative effect the
	// simulator produces for Fig 3: a data-intensive app finishes a fixed
	// workload faster with more parallel instances.
	app, err := apps.ByCode("SA")
	if err != nil {
		t.Fatal(err)
	}
	rep1, err := ExecuteReal(app, 30_000, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	rep4, err := ExecuteReal(app, 30_000, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if rep4.Elapsed >= rep1.Elapsed {
		t.Errorf("parallelism 4 (%v) not faster than 1 (%v) for a CPU-heavy app", rep4.Elapsed, rep1.Elapsed)
	}
}
