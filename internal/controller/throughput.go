package controller

import (
	"context"
	"fmt"

	"pdspbench/internal/apps"
	"pdspbench/internal/backend"
	"pdspbench/internal/cluster"
	"pdspbench/internal/core"
	"pdspbench/internal/metrics"
	"pdspbench/internal/workload"
)

// MaxSustainableRate finds the highest source event rate (events/s) a
// workload sustains on a cluster without saturating — the paper notes
// PDSP-Bench "can be used to measure other performance metrics depending
// upon SUT benchmarking requirements", and sustainable throughput is the
// classic second metric of streaming benchmarks (Karimov et al., ICDE'18).
//
// build must return the plan for a given source rate (parallelism
// already applied). The search runs a bounded binary search over
// [loRate, hiRate] and reports the largest rate whose run stays
// unsaturated and whose delivered throughput keeps up with the offered
// load.
func (c *Controller) MaxSustainableRate(ctx context.Context, build func(rate float64) (*core.PQP, error), cl *cluster.Cluster, loRate, hiRate float64) (float64, error) {
	if loRate <= 0 || hiRate <= loRate {
		return 0, fmt.Errorf("controller: invalid rate range [%g, %g]", loRate, hiRate)
	}
	sim := &backend.Sim{Cfg: c.Cfg}
	sustains := func(rate float64) (bool, error) {
		plan, err := build(rate)
		if err != nil {
			return false, err
		}
		rec, err := sim.Run(ctx, plan, cl, backend.RunSpec{Runs: 1, Placement: c.Placement})
		if err != nil {
			return false, err
		}
		return !rec.Saturated, nil
	}
	okLo, err := sustains(loRate)
	if err != nil {
		return 0, err
	}
	if !okLo {
		return 0, fmt.Errorf("controller: workload saturates even at %g events/s", loRate)
	}
	lo, hi := loRate, hiRate
	if okHi, err := sustains(hiRate); err != nil {
		return 0, err
	} else if okHi {
		return hiRate, nil
	}
	// Binary search with a 5% resolution.
	for hi/lo > 1.05 {
		mid := (lo + hi) / 2
		ok, err := sustains(mid)
		if err != nil {
			return 0, err
		}
		if ok {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, nil
}

// ExpThroughput regenerates a sustainable-throughput series: the maximum
// unsaturated event rate per parallelism category for one workload.
func (c *Controller) ExpThroughput(ctx context.Context, appCode string, s workload.Structure, categories []core.ParallelismCategory) (*metrics.Figure, error) {
	if len(categories) == 0 {
		categories = []core.ParallelismCategory{core.CatXS, core.CatS, core.CatM, core.CatL}
	}
	cl := c.Homogeneous()
	fig := &metrics.Figure{
		ID:     metrics.FigThroughput,
		Title:  "Maximum sustainable event rate per parallelism category",
		XLabel: "parallelism category",
		YLabel: "events/s",
	}
	series := metrics.Series{Label: "sustainable rate"}
	for _, cat := range categories {
		build := func(rate float64) (*core.PQP, error) {
			if appCode != "" {
				a, err := apps.ByCode(appCode)
				if err != nil {
					return nil, err
				}
				plan := a.Build(rate)
				plan.SetUniformParallelism(cat.Degree())
				return plan, nil
			}
			p := c.baseParams()
			p.EventRate = rate
			plan, err := workload.Build(s, p)
			if err != nil {
				return nil, err
			}
			plan.SetUniformParallelism(cat.Degree())
			return plan, nil
		}
		rate, err := c.MaxSustainableRate(ctx, build, cl, 1_000, 4_000_000)
		if err != nil {
			return nil, err
		}
		series.Points = append(series.Points, metrics.Point{X: cat.String(), Y: rate})
	}
	fig.Series = append(fig.Series, series)
	return fig, nil
}
