package controller

import (
	"context"
	"fmt"
	"testing"
)

const exampleSpec = `{
  "name": "smoke",
  "sut": "flink",
  "cluster": "m510",
  "nodes": 5,
  "event_rate": 50000,
  "runs": 1,
  "workloads": [
    {"structure": "linear", "categories": ["XS", "M"]},
    {"app": "SD", "degrees": [4]},
    {"structure": "2-way-join", "strategy": "rule-based", "variants": 2}
  ]
}`

func TestParseSpecAcceptsValidCampaign(t *testing.T) {
	spec, err := ParseSpec([]byte(exampleSpec))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "smoke" || len(spec.Workloads) != 3 {
		t.Errorf("parsed %+v", spec)
	}
}

func TestParseSpecRejectsInvalidCampaigns(t *testing.T) {
	cases := []struct {
		name string
		body string
	}{
		{"garbage", `{not json`},
		{"no workloads", `{"name":"x","workloads":[]}`},
		{"unknown sut", `{"name":"x","sut":"heron","workloads":[{"structure":"linear","degrees":[1]}]}`},
		{"unknown cluster", `{"name":"x","cluster":"moon","workloads":[{"structure":"linear","degrees":[1]}]}`},
		{"both app and structure", `{"name":"x","workloads":[{"app":"SD","structure":"linear","degrees":[1]}]}`},
		{"neither app nor structure", `{"name":"x","workloads":[{"degrees":[1]}]}`},
		{"unknown app", `{"name":"x","workloads":[{"app":"ZZ","degrees":[1]}]}`},
		{"unknown structure", `{"name":"x","workloads":[{"structure":"9-way-join","degrees":[1]}]}`},
		{"no sweep", `{"name":"x","workloads":[{"structure":"linear"}]}`},
		{"two sweeps", `{"name":"x","workloads":[{"structure":"linear","degrees":[1],"categories":["XS"]}]}`},
		{"bad category", `{"name":"x","workloads":[{"structure":"linear","categories":["XXXL"]}]}`},
		{"unknown strategy", `{"name":"x","workloads":[{"structure":"linear","strategy":"oracle","variants":1}]}`},
		{"strategy without variants", `{"name":"x","workloads":[{"structure":"linear","strategy":"random"}]}`},
	}
	for _, c := range cases {
		if _, err := ParseSpec([]byte(c.body)); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestShardSplitsSweepsIntoSingleMeasurementCampaigns(t *testing.T) {
	spec, err := ParseSpec([]byte(exampleSpec))
	if err != nil {
		t.Fatal(err)
	}
	shards := spec.Shard()
	// linear×2 categories + SD×1 degree + join strategy (unsplittable) = 4.
	if len(shards) != 4 {
		t.Fatalf("shards = %d, want 4", len(shards))
	}
	names := map[string]bool{}
	total := 0
	for i := range shards {
		sh := &shards[i]
		if err := sh.Validate(); err != nil {
			t.Errorf("shard %s invalid: %v", sh.Name, err)
		}
		if names[sh.Name] {
			t.Errorf("duplicate shard name %s", sh.Name)
		}
		names[sh.Name] = true
		if len(sh.Workloads) != 1 {
			t.Errorf("shard %s has %d workloads", sh.Name, len(sh.Workloads))
		}
		if sh.SUT != spec.SUT || sh.EventRate != spec.EventRate || sh.Cluster != spec.Cluster {
			t.Errorf("shard %s lost campaign globals: %+v", sh.Name, sh)
		}
		w := sh.Workloads[0]
		switch {
		case len(w.Degrees) > 0:
			total += len(w.Degrees)
		case len(w.Categories) > 0:
			total += len(w.Categories)
		default:
			total += w.Variants
		}
	}
	// Shards cover exactly the original campaign's 5 measurements.
	if total != 5 {
		t.Errorf("shards cover %d measurements, want 5", total)
	}
}

func TestShardedCampaignMatchesWholeCampaignRecordCount(t *testing.T) {
	spec, err := ParseSpec([]byte(exampleSpec))
	if err != nil {
		t.Fatal(err)
	}
	c := tiny()
	whole, err := c.RunSpec(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	var sharded int
	for _, sh := range spec.Shard() {
		recs, err := tiny().RunSpec(context.Background(), &sh)
		if err != nil {
			t.Fatalf("shard %s: %v", sh.Name, err)
		}
		sharded += len(recs)
	}
	if sharded != len(whole) {
		t.Errorf("sharded runs produced %d records, whole campaign %d", sharded, len(whole))
	}
}

func TestRunSpecProducesOneRecordPerMeasurement(t *testing.T) {
	spec, err := ParseSpec([]byte(exampleSpec))
	if err != nil {
		t.Fatal(err)
	}
	c := tiny()
	records, err := c.RunSpec(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	// linear×2 categories + SD×1 degree + join×2 variants = 5.
	if len(records) != 5 {
		t.Fatalf("records = %d, want 5", len(records))
	}
	for _, r := range records {
		if r.LatencyP50 <= 0 {
			t.Errorf("record %s has latency %v", r.ID, r.LatencyP50)
		}
		if r.Cluster != "m510" {
			t.Errorf("record on cluster %q", r.Cluster)
		}
		// EventRate totals over sources: 50k per source.
		if r.EventRate < 50_000 || int(r.EventRate)%50_000 != 0 {
			t.Errorf("record rate %v, want a multiple of the spec's per-source 50000", r.EventRate)
		}
	}
}

func TestRunSpecAppliesSUTProfile(t *testing.T) {
	// The same workload under the storm profile (150µs per message) must
	// not produce byte-identical latency to the flink profile.
	base := `{"name":"x","sut":"%s","event_rate":200000,"workloads":[{"structure":"3-way-join","degrees":[8]}]}`
	run := func(sut string) float64 {
		spec, err := ParseSpec([]byte(fmt.Sprintf(base, sut)))
		if err != nil {
			t.Fatal(err)
		}
		c := tiny()
		recs, err := c.RunSpec(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		return recs[0].LatencyP50
	}
	if run("flink") == run("storm") {
		t.Error("SUT profile had no effect on the measurement")
	}
}

func TestRunSpecWithExtensionApp(t *testing.T) {
	spec, err := ParseSpec([]byte(`{"name":"x","event_rate":50000,"workloads":[{"app":"NXQ5","degrees":[2]}]}`))
	if err != nil {
		t.Fatal(err)
	}
	c := tiny()
	recs, err := c.RunSpec(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].LatencyP50 <= 0 {
		t.Errorf("extension app records: %+v", recs)
	}
}
