package controller

import (
	"context"

	"pdspbench/internal/apps"
	"pdspbench/internal/cluster"
	"pdspbench/internal/core"
	"pdspbench/internal/metrics"
	"pdspbench/internal/workload"
)

// exp2Clusters returns the three hardware configurations of Table 4 in
// the paper's presentation order, plus the genuinely mixed deployment.
func (c *Controller) exp2Clusters() []*cluster.Cluster {
	return []*cluster.Cluster{c.Homogeneous(), c.HeteroEpyc(), c.HeteroHaswell(), c.Mixed()}
}

// Exp2RealWorld regenerates Figure 4 (top): mean end-to-end latency of
// the real-world applications on each cluster, with the parallelism
// degree matched to the cluster's per-node core count (the paper: "PQP
// with parallelism degree category as per # cores on hardware of each
// cluster" — m510→8, c6525_25g→16, c6320→28).
func (c *Controller) Exp2RealWorld(ctx context.Context, codes []string) (*metrics.Figure, error) {
	if len(codes) == 0 {
		codes = apps.Codes()
	}
	fig := &metrics.Figure{
		ID:     metrics.FigHardwareRealWorld,
		Title:  "Homogeneous vs heterogeneous hardware: real-world applications",
		XLabel: "application",
		YLabel: "mean latency (ms)",
	}
	for _, cl := range c.exp2Clusters() {
		degree := cl.Nodes[0].Type.Cores
		for _, n := range cl.Nodes[1:] {
			if n.Type.Cores < degree {
				degree = n.Type.Cores
			}
		}
		series := metrics.Series{Label: cl.Name}
		for _, code := range codes {
			app, err := apps.ByCode(code)
			if err != nil {
				return nil, err
			}
			plan := app.Build(c.EventRate)
			plan.SetUniformParallelism(degree)
			rec, err := c.Measure(ctx, plan, cl)
			if err != nil {
				return nil, err
			}
			series.Points = append(series.Points, metrics.Point{X: code, Y: rec.LatencyMean * 1000})
		}
		fig.Series = append(fig.Series, series)
	}
	return fig, nil
}

// Exp2Synthetic regenerates Figure 4 (bottom): mean latency over the
// synthetic structure suite per parallelism category, one series per
// cluster type.
func (c *Controller) Exp2Synthetic(ctx context.Context, categories []core.ParallelismCategory, structures []workload.Structure) (*metrics.Figure, error) {
	if len(categories) == 0 {
		categories = core.AllCategories
	}
	if len(structures) == 0 {
		structures = workload.Structures
	}
	fig := &metrics.Figure{
		ID:     metrics.FigHardwareSynthetic,
		Title:  "Homogeneous vs heterogeneous hardware: synthetic structures",
		XLabel: "parallelism category",
		YLabel: "mean latency (ms)",
	}
	for _, cl := range c.exp2Clusters() {
		series := metrics.Series{Label: cl.Name}
		for _, cat := range categories {
			var sum float64
			for _, st := range structures {
				plan, err := c.SyntheticPlan(st, cat.Degree())
				if err != nil {
					return nil, err
				}
				rec, err := c.Measure(ctx, plan, cl)
				if err != nil {
					return nil, err
				}
				sum += rec.LatencyP50 * 1000
			}
			series.Points = append(series.Points, metrics.Point{X: cat.String(), Y: sum / float64(len(structures))})
		}
		fig.Series = append(fig.Series, series)
	}
	return fig, nil
}
