package controller

import (
	"context"
	"fmt"

	"pdspbench/internal/backend"
	"pdspbench/internal/metrics"
	"pdspbench/internal/workload"
)

// ExpSUTComparison benchmarks the same workloads on every registered SUT
// profile — the paper's claim that the System Under Test "can be
// exchanged by any SPS" exercised end to end. One series per SUT, one
// column per synthetic structure, at the given uniform parallelism.
func (c *Controller) ExpSUTComparison(ctx context.Context, structures []workload.Structure, degree int) (*metrics.Figure, error) {
	if len(structures) == 0 {
		structures = []workload.Structure{
			workload.StructLinear, workload.StructTwoWayJoin, workload.StructThreeJoin,
		}
	}
	if degree <= 0 {
		degree = 8
	}
	cl := c.Homogeneous()
	fig := &metrics.Figure{
		ID:     metrics.FigSUTComparison,
		Title:  fmt.Sprintf("SUT profiles on identical workloads (degree %d)", degree),
		XLabel: "structure",
		YLabel: "median latency (ms)",
	}
	for _, prof := range backend.Profiles() {
		series := metrics.Series{Label: prof.Name}
		for _, s := range structures {
			plan, err := c.SyntheticPlan(s, degree)
			if err != nil {
				return nil, err
			}
			sut := *c
			sut.Backend = nil // profile sweeps are sim-backend by construction
			cfg := prof.Config
			// Keep the controller's fidelity settings; take the profile's
			// cost calibration.
			cfg.Duration = c.Cfg.Duration
			cfg.SourceBatches = c.Cfg.SourceBatches
			cfg.WarmupFraction = c.Cfg.WarmupFraction
			cfg.Seed = c.Cfg.Seed
			sut.Cfg = cfg
			sut.Store = nil // comparison sweeps should not pollute the run store
			rec, err := sut.Measure(ctx, plan, cl)
			if err != nil {
				return nil, err
			}
			series.Points = append(series.Points, metrics.Point{X: string(s), Y: rec.LatencyP50 * 1000})
		}
		fig.Series = append(fig.Series, series)
	}
	return fig, nil
}
