package controller

import (
	"context"
	"encoding/json"
	"fmt"

	"pdspbench/internal/apps"
	"pdspbench/internal/backend"
	"pdspbench/internal/chaos"
	"pdspbench/internal/cluster"
	"pdspbench/internal/core"
	"pdspbench/internal/metrics"
	"pdspbench/internal/tuple"
	"pdspbench/internal/workload"
)

// Spec is a declarative benchmark campaign — the file-based counterpart
// of the inputs the paper's web UI collects (applications, parallelism
// enumeration, cluster setup, SUT selection) before the controller
// orchestrates the runs.
type Spec struct {
	Name string `json:"name"`
	// SUT selects a simulator cost profile: flink (default), storm,
	// microbatch.
	SUT string `json:"sut,omitempty"`
	// Backend selects the execution backend (sim by default, or real for
	// bounded in-process execution).
	Backend string `json:"backend,omitempty"`
	// Cluster is m510 (default), c6525_25g, c6320 or mixed; Nodes
	// defaults to 5.
	Cluster string `json:"cluster,omitempty"`
	Nodes   int    `json:"nodes,omitempty"`
	// EventRate defaults to the controller's (500k events/s).
	EventRate float64 `json:"event_rate,omitempty"`
	// Runs is the repetition count per measurement (default 1).
	Runs int `json:"runs,omitempty"`
	// Faults is an optional deterministic fault plan applied to every
	// measurement in the campaign (see internal/chaos). The same plan
	// expands to the same event schedule on either backend.
	Faults    *chaos.Plan    `json:"faults,omitempty"`
	Workloads []WorkloadSpec `json:"workloads"`
}

// WorkloadSpec is one workload entry: an application or a synthetic
// structure, swept over explicit degrees, categories, or a parallelism
// enumeration strategy.
type WorkloadSpec struct {
	App       string `json:"app,omitempty"`
	Structure string `json:"structure,omitempty"`
	// Exactly one sweep source: Degrees, Categories, or Strategy+Variants.
	Degrees    []int    `json:"degrees,omitempty"`
	Categories []string `json:"categories,omitempty"`
	Strategy   string   `json:"strategy,omitempty"`
	Variants   int      `json:"variants,omitempty"`
}

// ParseSpec decodes and validates a campaign.
func ParseSpec(data []byte) (*Spec, error) {
	var s Spec
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("controller: decode spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Validate checks the campaign is runnable before any simulation starts.
func (s *Spec) Validate() error {
	if len(s.Workloads) == 0 {
		return fmt.Errorf("controller: spec %q has no workloads", s.Name)
	}
	if s.SUT != "" {
		if _, ok := backend.ProfileByName(s.SUT); !ok {
			return fmt.Errorf("controller: spec %q: unknown SUT %q", s.Name, s.SUT)
		}
	}
	if s.Backend != "" {
		if _, err := backend.ByName(s.Backend); err != nil {
			return fmt.Errorf("controller: spec %q: %w", s.Name, err)
		}
	}
	switch s.Cluster {
	case "", "m510", "c6525_25g", "c6320", "mixed":
	default:
		return fmt.Errorf("controller: spec %q: unknown cluster %q", s.Name, s.Cluster)
	}
	for i, w := range s.Workloads {
		if (w.App == "") == (w.Structure == "") {
			return fmt.Errorf("controller: workload %d: exactly one of app or structure required", i)
		}
		if w.App != "" {
			if _, err := apps.ByCode(w.App); err != nil {
				if _, ok := apps.ExtensionByCode(w.App); !ok {
					return fmt.Errorf("controller: workload %d: %w", i, err)
				}
			}
		}
		if w.Structure != "" {
			if _, err := workload.ParseStructure(w.Structure); err != nil {
				return fmt.Errorf("controller: workload %d: %w", i, err)
			}
		}
		sweeps := 0
		if len(w.Degrees) > 0 {
			sweeps++
		}
		if len(w.Categories) > 0 {
			sweeps++
		}
		if w.Strategy != "" {
			sweeps++
		}
		if sweeps != 1 {
			return fmt.Errorf("controller: workload %d: exactly one of degrees, categories or strategy required", i)
		}
		for _, c := range w.Categories {
			if _, err := core.ParseCategory(c); err != nil {
				return fmt.Errorf("controller: workload %d: %w", i, err)
			}
		}
		if w.Strategy != "" {
			found := false
			for _, n := range workload.StrategyNames {
				if n == w.Strategy {
					found = true
				}
			}
			if !found {
				return fmt.Errorf("controller: workload %d: unknown strategy %q", i, w.Strategy)
			}
			if w.Variants <= 0 {
				return fmt.Errorf("controller: workload %d: strategy sweep needs variants > 0", i)
			}
		}
	}
	return nil
}

// Shard splits the campaign into independently runnable sub-campaigns,
// one per swept measurement point, so the distributed fabric can fan a
// campaign out across workers (POST /api/jobs with "split": true).
// Degree and category sweeps shard into one campaign per point; a
// strategy sweep stays whole, because its enumeration is one seeded
// draw whose variants are not individually addressable. Every shard
// inherits the campaign's globals — SUT, backend, cluster, event rate,
// repetition count and fault plan — so N workers draining the shards
// produce exactly the records the in-process campaign would.
func (s *Spec) Shard() []Spec {
	var out []Spec
	for _, w := range s.Workloads {
		name := w.App
		if name == "" {
			name = w.Structure
		}
		switch {
		case len(w.Degrees) > 0:
			for _, d := range w.Degrees {
				sw := w
				sw.Degrees = []int{d}
				out = append(out, s.shard(fmt.Sprintf("%s/%s-p%d", s.Name, name, d), sw))
			}
		case len(w.Categories) > 0:
			for _, cat := range w.Categories {
				sw := w
				sw.Categories = []string{cat}
				out = append(out, s.shard(fmt.Sprintf("%s/%s-%s", s.Name, name, cat), sw))
			}
		default:
			out = append(out, s.shard(fmt.Sprintf("%s/%s-%s", s.Name, name, w.Strategy), w))
		}
	}
	return out
}

// shard clones the campaign globals around one workload entry. The
// Faults pointer is shared intentionally: plans are read-only after
// parse.
func (s *Spec) shard(name string, w WorkloadSpec) Spec {
	sub := *s
	sub.Name = name
	sub.Workloads = []WorkloadSpec{w}
	return sub
}

// buildBase constructs the workload's plan at the campaign's event rate.
func (s *Spec) buildBase(w WorkloadSpec, rate float64) (*core.PQP, error) {
	if w.App != "" {
		if a, err := apps.ByCode(w.App); err == nil {
			return a.Build(rate), nil
		}
		if a, ok := apps.ExtensionByCode(w.App); ok {
			return a.Build(rate), nil
		}
		return nil, fmt.Errorf("controller: unknown app %q", w.App)
	}
	st, err := workload.ParseStructure(w.Structure)
	if err != nil {
		return nil, err
	}
	p := workload.Params{
		EventRate:  rate,
		TupleWidth: 5,
		FieldTypes: []tuple.Type{tuple.TypeInt, tuple.TypeInt, tuple.TypeDouble, tuple.TypeDouble, tuple.TypeString},
		Window:     core.WindowSpec{Type: core.WindowSliding, Policy: core.PolicyTime, LengthMs: 1000, SlideRatio: 0.5},
		AggFn:      core.AggSum, FilterFn: core.FilterLess, Selectivity: 0.5,
		Partition: core.PartitionRebalance, Distribution: "poisson",
	}
	return workload.Build(st, p)
}

// RunSpec executes the campaign and returns one record per measurement.
func (c *Controller) RunSpec(ctx context.Context, spec *Spec) ([]metrics.RunRecord, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	run := *c
	if spec.SUT != "" {
		prof, _ := backend.ProfileByName(spec.SUT)
		cfg := prof.Config
		cfg.Duration = c.Cfg.Duration
		cfg.SourceBatches = c.Cfg.SourceBatches
		cfg.WarmupFraction = c.Cfg.WarmupFraction
		cfg.Seed = c.Cfg.Seed
		run.Cfg = cfg
	}
	if spec.Backend != "" {
		b, err := backend.ByName(spec.Backend)
		if err != nil {
			return nil, err
		}
		if sim, ok := b.(*backend.Sim); ok {
			sim.Cfg = run.Cfg // keep the campaign's SUT profile and fidelity
		}
		run.Backend = b
	}
	if spec.Nodes > 0 {
		run.Nodes = spec.Nodes
	}
	if spec.EventRate > 0 {
		run.EventRate = spec.EventRate
	}
	if spec.Runs > 0 {
		run.Runs = spec.Runs
	}
	cl, err := clusterForSpec(&run, spec.Cluster)
	if err != nil {
		return nil, err
	}

	var records []metrics.RunRecord
	for _, w := range spec.Workloads {
		variants, err := run.expandWorkload(w, cl)
		if err != nil {
			return nil, err
		}
		for _, plan := range variants {
			rec, err := run.MeasureSpec(ctx, plan, cl, backend.RunSpec{Faults: spec.Faults})
			if err != nil {
				return nil, err
			}
			records = append(records, *rec)
		}
	}
	return records, nil
}

// expandWorkload materializes one workload entry's sweep into plans.
func (c *Controller) expandWorkload(w WorkloadSpec, cl *cluster.Cluster) ([]*core.PQP, error) {
	base, err := (&Spec{}).buildBase(w, c.EventRate)
	if err != nil {
		return nil, err
	}
	var out []*core.PQP
	switch {
	case len(w.Degrees) > 0:
		for _, d := range w.Degrees {
			v := base.Clone()
			v.SetUniformParallelism(d)
			out = append(out, v)
		}
	case len(w.Categories) > 0:
		for _, cs := range w.Categories {
			cat, err := core.ParseCategory(cs)
			if err != nil {
				return nil, err
			}
			v := base.Clone()
			v.SetUniformParallelism(cat.Degree())
			out = append(out, v)
		}
	default:
		enum := workload.NewEnumerator(c.Seed)
		strat, err := workload.StrategyByName(w.Strategy, enum.Rand())
		if err != nil {
			return nil, err
		}
		out = strat.Enumerate(base, cl, w.Variants)
	}
	return out, nil
}

func clusterForSpec(c *Controller, name string) (*cluster.Cluster, error) {
	switch name {
	case "", "m510":
		return c.Homogeneous(), nil
	case "c6525_25g":
		return c.HeteroEpyc(), nil
	case "c6320":
		return c.HeteroHaswell(), nil
	case "mixed":
		return c.Mixed(), nil
	default:
		return nil, fmt.Errorf("controller: unknown cluster %q", name)
	}
}
