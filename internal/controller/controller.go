// Package controller orchestrates PDSP-Bench experiments: it provisions
// (modelled) clusters, deploys generated workloads through an execution
// backend, collects run records into the store, and produces the data
// behind every figure of the paper's evaluation (Section 4). It is the
// Go counterpart of the paper's Django controller. The controller never
// talks to an engine directly — every run goes through the Backend
// interface (internal/backend), so the SUT is exchangeable exactly as
// the paper claims.
//
// Ownership: the controller owns run-record production — repetitions,
// averaging, storage appends — and Spec owns campaign semantics,
// including Shard, which splits a sweep into single-measurement
// sub-campaigns for the distributed fabric (internal/queue). A sharded
// campaign drained by N workers produces exactly the records the
// in-process campaign would; only the append site moves, from the
// local Store to the dispatcher's.
package controller

import (
	"context"

	"pdspbench/internal/backend"
	"pdspbench/internal/cluster"
	"pdspbench/internal/core"
	"pdspbench/internal/metrics"
	"pdspbench/internal/storage"
	"pdspbench/internal/tuple"
	"pdspbench/internal/workload"
)

// Controller runs experiments.
type Controller struct {
	// Cfg is the simulator configuration (fidelity and cost constants),
	// applied when the sim backend executes a run.
	Cfg backend.SimConfig
	// Backend executes the runs. Nil means the sim backend configured
	// with Cfg — the scale regime every figure experiment uses.
	Backend backend.Backend
	// Runs is the repetition count per measurement; the paper uses 3.
	Runs int
	// Nodes is the cluster size; the paper deploys clusters of 5 nodes.
	Nodes int
	// EventRate pins the source rate for Exp-1/2; the paper presents
	// results at its highest sustained event rate, where parallelism and
	// hardware effects are visible (low rates leave every operator
	// underutilized and flatten all curves).
	EventRate float64
	// Seed drives workload enumeration.
	Seed int64
	// Store, when set, receives every RunRecord (the MongoDB role).
	Store *storage.Store
	// Placement selects the instance-placement strategy.
	Placement cluster.Strategy
}

// New returns a controller with the paper's experiment defaults.
func New() *Controller {
	return &Controller{
		Cfg:       backend.SimDefaults(),
		Runs:      3,
		Nodes:     5,
		EventRate: 500_000,
		Seed:      1,
		Placement: cluster.PlaceRoundRobin,
	}
}

// Fast returns a controller with reduced simulation fidelity for quick
// interactive runs and unit tests; figure shapes are preserved.
func Fast() *Controller {
	c := New()
	c.Runs = 1
	c.Cfg.Duration = 12
	c.Cfg.SourceBatches = 96
	return c
}

// backend returns the execution backend for the next run. The sim
// default is constructed per call so Cfg edits between runs (SUT
// profiles, fidelity changes) always take effect.
func (c *Controller) backend() backend.Backend {
	if c.Backend != nil {
		return c.Backend
	}
	return &backend.Sim{Cfg: c.Cfg}
}

// BackendName names the backend the controller would run on — surfaced
// in listings and records.
func (c *Controller) BackendName() string { return c.backend().Name() }

// Homogeneous provisions the paper's homogeneous cluster (m510).
func (c *Controller) Homogeneous() *cluster.Cluster {
	return cluster.NewHomogeneous("m510", cluster.M510, c.Nodes)
}

// HeteroEpyc and HeteroHaswell provision the two CloudLab flavours the
// paper labels heterogeneous (Table 4), and Mixed interleaves them into
// one genuinely mixed deployment.
func (c *Controller) HeteroEpyc() *cluster.Cluster {
	return cluster.NewHomogeneous("c6525_25g", cluster.C6525_25G, c.Nodes)
}

// HeteroHaswell provisions the c6320 cluster.
func (c *Controller) HeteroHaswell() *cluster.Cluster {
	return cluster.NewHomogeneous("c6320", cluster.C6320, c.Nodes)
}

// Mixed provisions an interleaved c6525_25g/c6320 cluster.
func (c *Controller) Mixed() *cluster.Cluster {
	return cluster.NewHeterogeneous("mixed", []cluster.NodeType{cluster.C6525_25G, cluster.C6320}, c.Nodes)
}

// Measure executes one plan on the controller's backend, returning the
// paper's statistic (mean over Runs of each run's median latency) as a
// RunRecord and appending it to the store when one is configured.
func (c *Controller) Measure(ctx context.Context, plan *core.PQP, cl *cluster.Cluster) (*metrics.RunRecord, error) {
	return c.MeasureSpec(ctx, plan, cl, backend.RunSpec{})
}

// MeasureSpec is Measure with explicit per-run overrides; zero spec
// fields fall back to the controller's defaults.
func (c *Controller) MeasureSpec(ctx context.Context, plan *core.PQP, cl *cluster.Cluster, spec backend.RunSpec) (*metrics.RunRecord, error) {
	if spec.Runs <= 0 {
		spec.Runs = c.Runs
	}
	if spec.Placement == cluster.PlaceRoundRobin {
		spec.Placement = c.Placement
	}
	rec, err := c.backend().Run(ctx, plan, cl, spec)
	if err != nil {
		return nil, err
	}
	if c.Store != nil {
		if err := c.Store.Append("runs", rec); err != nil {
			return nil, err
		}
	}
	return rec, nil
}

// ExplainSim runs one simulation and returns the simulator's
// mean-latency breakdown (queue wait, service, network, window
// residence) — diagnostic attribution only the sim backend can supply.
func (c *Controller) ExplainSim(ctx context.Context, plan *core.PQP, cl *cluster.Cluster) (backend.Breakdown, error) {
	sim := &backend.Sim{Cfg: c.Cfg}
	return sim.Explain(ctx, plan, cl, backend.RunSpec{Placement: c.Placement})
}

// baseParams is the fixed synthetic-query configuration used by the
// figure experiments (Exp-1/2 vary structure, parallelism and hardware
// while pinning data parameters, as the paper does).
func (c *Controller) baseParams() workload.Params {
	return workload.Params{
		EventRate:  c.EventRate,
		TupleWidth: 5,
		FieldTypes: []tuple.Type{tuple.TypeInt, tuple.TypeInt, tuple.TypeDouble, tuple.TypeDouble, tuple.TypeString},
		Window: core.WindowSpec{
			Type: core.WindowSliding, Policy: core.PolicyTime, LengthMs: 1000, SlideRatio: 0.5,
		},
		AggFn:        core.AggSum,
		FilterFn:     core.FilterLess,
		Selectivity:  0.5,
		Partition:    core.PartitionRebalance,
		Distribution: "poisson",
	}
}

// SyntheticPlan builds one synthetic structure at the controller's event
// rate with the given uniform parallelism degree.
func (c *Controller) SyntheticPlan(s workload.Structure, degree int) (*core.PQP, error) {
	plan, err := workload.Build(s, c.baseParams())
	if err != nil {
		return nil, err
	}
	plan.SetUniformParallelism(degree)
	return plan, nil
}
