// Package controller orchestrates PDSP-Bench experiments: it provisions
// (modelled) clusters, deploys generated workloads through the cluster
// simulator, collects run records into the store, and produces the data
// behind every figure of the paper's evaluation (Section 4). It is the
// Go counterpart of the paper's Django controller.
package controller

import (
	"fmt"

	"pdspbench/internal/cluster"
	"pdspbench/internal/core"
	"pdspbench/internal/metrics"
	"pdspbench/internal/simengine"
	"pdspbench/internal/storage"
	"pdspbench/internal/tuple"
	"pdspbench/internal/workload"
)

// Controller runs experiments.
type Controller struct {
	// Cfg is the simulator configuration (fidelity and cost constants).
	Cfg simengine.Config
	// Runs is the repetition count per measurement; the paper uses 3.
	Runs int
	// Nodes is the cluster size; the paper deploys clusters of 5 nodes.
	Nodes int
	// EventRate pins the source rate for Exp-1/2; the paper presents
	// results at its highest sustained event rate, where parallelism and
	// hardware effects are visible (low rates leave every operator
	// underutilized and flatten all curves).
	EventRate float64
	// Seed drives workload enumeration.
	Seed int64
	// Store, when set, receives every RunRecord (the MongoDB role).
	Store *storage.Store
	// Placement selects the instance-placement strategy.
	Placement cluster.Strategy
}

// New returns a controller with the paper's experiment defaults.
func New() *Controller {
	return &Controller{
		Cfg:       simengine.Defaults(),
		Runs:      3,
		Nodes:     5,
		EventRate: 500_000,
		Seed:      1,
		Placement: cluster.PlaceRoundRobin,
	}
}

// Fast returns a controller with reduced simulation fidelity for quick
// interactive runs and unit tests; figure shapes are preserved.
func Fast() *Controller {
	c := New()
	c.Runs = 1
	c.Cfg.Duration = 12
	c.Cfg.SourceBatches = 96
	return c
}

// Homogeneous provisions the paper's homogeneous cluster (m510).
func (c *Controller) Homogeneous() *cluster.Cluster {
	return cluster.NewHomogeneous("m510", cluster.M510, c.Nodes)
}

// HeteroEpyc and HeteroHaswell provision the two CloudLab flavours the
// paper labels heterogeneous (Table 4), and Mixed interleaves them into
// one genuinely mixed deployment.
func (c *Controller) HeteroEpyc() *cluster.Cluster {
	return cluster.NewHomogeneous("c6525_25g", cluster.C6525_25G, c.Nodes)
}

// HeteroHaswell provisions the c6320 cluster.
func (c *Controller) HeteroHaswell() *cluster.Cluster {
	return cluster.NewHomogeneous("c6320", cluster.C6320, c.Nodes)
}

// Mixed provisions an interleaved c6525_25g/c6320 cluster.
func (c *Controller) Mixed() *cluster.Cluster {
	return cluster.NewHeterogeneous("mixed", []cluster.NodeType{cluster.C6525_25G, cluster.C6320}, c.Nodes)
}

// Measure places and simulates one plan, returning the paper's statistic
// (mean over Runs of each run's median latency) as a RunRecord.
func (c *Controller) Measure(plan *core.PQP, cl *cluster.Cluster) (*metrics.RunRecord, error) {
	pl, err := cluster.Place(plan, cl, c.Placement)
	if err != nil {
		return nil, err
	}
	med, results, err := simengine.MedianOfRuns(plan, pl, c.Cfg, c.Runs)
	if err != nil {
		return nil, err
	}
	var rate float64
	for _, s := range plan.Sources() {
		rate += s.Source.EventRate
	}
	rec := &metrics.RunRecord{
		ID:         fmt.Sprintf("%s/%s/p%d", plan.Name, cl.Name, plan.MaxParallelism()),
		Workload:   plan.Structure,
		Cluster:    cl.Name,
		Category:   core.CategoryForDegree(plan.MaxParallelism()).String(),
		MaxDegree:  plan.MaxParallelism(),
		EventRate:  rate,
		LatencyP50: med,
		Runs:       c.Runs,
	}
	// Aggregate the companion metrics over runs.
	for _, r := range results {
		rec.LatencyP95 += r.LatencyP95 / float64(len(results))
		rec.LatencyMean += r.LatencyMean / float64(len(results))
		rec.Throughput += r.Throughput / float64(len(results))
		rec.Saturated = rec.Saturated || r.Saturated
	}
	if c.Store != nil {
		if err := c.Store.Append("runs", rec); err != nil {
			return nil, err
		}
	}
	return rec, nil
}

// simulateOnce runs a single simulation, returning its median latency —
// corpus labeling uses one run per query to bound collection cost.
func simulateOnce(plan *core.PQP, pl *cluster.Placement, cfg simengine.Config) (float64, *simengine.Result, error) {
	res, err := simengine.Simulate(plan, pl, cfg)
	if err != nil {
		return 0, nil, err
	}
	return res.LatencyP50, res, nil
}

// baseParams is the fixed synthetic-query configuration used by the
// figure experiments (Exp-1/2 vary structure, parallelism and hardware
// while pinning data parameters, as the paper does).
func (c *Controller) baseParams() workload.Params {
	return workload.Params{
		EventRate:  c.EventRate,
		TupleWidth: 5,
		FieldTypes: []tuple.Type{tuple.TypeInt, tuple.TypeInt, tuple.TypeDouble, tuple.TypeDouble, tuple.TypeString},
		Window: core.WindowSpec{
			Type: core.WindowSliding, Policy: core.PolicyTime, LengthMs: 1000, SlideRatio: 0.5,
		},
		AggFn:        core.AggSum,
		FilterFn:     core.FilterLess,
		Selectivity:  0.5,
		Partition:    core.PartitionRebalance,
		Distribution: "poisson",
	}
}

// SyntheticPlan builds one synthetic structure at the controller's event
// rate with the given uniform parallelism degree.
func (c *Controller) SyntheticPlan(s workload.Structure, degree int) (*core.PQP, error) {
	plan, err := workload.Build(s, c.baseParams())
	if err != nil {
		return nil, err
	}
	plan.SetUniformParallelism(degree)
	return plan, nil
}
