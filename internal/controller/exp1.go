package controller

import (
	"context"

	"pdspbench/internal/apps"
	"pdspbench/internal/core"
	"pdspbench/internal/metrics"
	"pdspbench/internal/workload"
)

// Exp1Synthetic regenerates Figure 3 (top): median end-to-end latency of
// the nine synthetic query structures across parallelism categories
// XS…XXL on the homogeneous m510 cluster. One series per category, one
// column per structure (the paper's grouping).
func (c *Controller) Exp1Synthetic(ctx context.Context, categories []core.ParallelismCategory, structures []workload.Structure) (*metrics.Figure, error) {
	if len(categories) == 0 {
		categories = core.AllCategories
	}
	if len(structures) == 0 {
		structures = workload.Structures
	}
	cl := c.Homogeneous()
	fig := &metrics.Figure{
		ID:     metrics.FigComplexitySynthetic,
		Title:  "Impact of PQP complexity: synthetic structures on homogeneous m510",
		XLabel: "structure",
		YLabel: "median latency (ms)",
	}
	for _, cat := range categories {
		series := metrics.Series{Label: cat.String()}
		for _, st := range structures {
			plan, err := c.SyntheticPlan(st, cat.Degree())
			if err != nil {
				return nil, err
			}
			rec, err := c.Measure(ctx, plan, cl)
			if err != nil {
				return nil, err
			}
			series.Points = append(series.Points, metrics.Point{X: string(st), Y: rec.LatencyP50 * 1000})
		}
		fig.Series = append(fig.Series, series)
	}
	return fig, nil
}

// Exp1RealWorld regenerates Figure 3 (bottom): the same sweep over the
// real-world application suite.
func (c *Controller) Exp1RealWorld(ctx context.Context, categories []core.ParallelismCategory, codes []string) (*metrics.Figure, error) {
	if len(categories) == 0 {
		categories = core.AllCategories
	}
	if len(codes) == 0 {
		codes = apps.Codes()
	}
	cl := c.Homogeneous()
	fig := &metrics.Figure{
		ID:     metrics.FigComplexityRealWorld,
		Title:  "Impact of PQP complexity: real-world applications on homogeneous m510",
		XLabel: "application",
		YLabel: "median latency (ms)",
	}
	for _, cat := range categories {
		series := metrics.Series{Label: cat.String()}
		for _, code := range codes {
			app, err := apps.ByCode(code)
			if err != nil {
				return nil, err
			}
			plan := app.Build(c.EventRate)
			plan.SetUniformParallelism(cat.Degree())
			rec, err := c.Measure(ctx, plan, cl)
			if err != nil {
				return nil, err
			}
			series.Points = append(series.Points, metrics.Point{X: code, Y: rec.LatencyP50 * 1000})
		}
		fig.Series = append(fig.Series, series)
	}
	return fig, nil
}
