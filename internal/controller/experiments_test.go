package controller

// Shape tests for the paper's observations O1–O9 (Section 4). Each test
// regenerates the relevant slice of a figure with the Fast() controller
// and asserts the qualitative relationship the paper reports — who wins,
// by roughly what factor, where the crossovers fall — not absolute
// numbers.

import (
	"context"
	"testing"

	"pdspbench/internal/apps"
	"pdspbench/internal/core"
	"pdspbench/internal/ml"
	"pdspbench/internal/mlmanager"
	"pdspbench/internal/workload"
)

// measure returns the median latency of one synthetic structure at one
// degree on the homogeneous cluster.
func measureSynthetic(t *testing.T, c *Controller, s workload.Structure, degree int) float64 {
	t.Helper()
	plan, err := c.SyntheticPlan(s, degree)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := c.Measure(context.Background(), plan, c.Homogeneous())
	if err != nil {
		t.Fatal(err)
	}
	return rec.LatencyP50
}

func measureApp(t *testing.T, c *Controller, code string, degree int) float64 {
	t.Helper()
	return measureAppOn(t, c, code, degree, "m510")
}

func measureAppOn(t *testing.T, c *Controller, code string, degree int, clusterName string) float64 {
	t.Helper()
	app := mustApp(t, code)
	plan := app.Build(c.EventRate)
	plan.SetUniformParallelism(degree)
	var cl = c.Homogeneous()
	switch clusterName {
	case "c6525_25g":
		cl = c.HeteroEpyc()
	case "c6320":
		cl = c.HeteroHaswell()
	case "mixed":
		cl = c.Mixed()
	}
	rec, err := c.Measure(context.Background(), plan, cl)
	if err != nil {
		t.Fatal(err)
	}
	return rec.LatencyP50
}

func TestO1JoinQueriesSpeedUpWithParallelism(t *testing.T) {
	c := Fast()
	xs := measureSynthetic(t, c, workload.StructThreeJoin, core.CatXS.Degree())
	m := measureSynthetic(t, c, workload.StructThreeJoin, core.CatM.Degree())
	if xs <= m*1.2 {
		t.Errorf("O1: 3-way join XS latency %.3fs not clearly above M latency %.3fs; parallelism should help joins", xs, m)
	}
}

func TestO1ComplexityIncreasesLatency(t *testing.T) {
	c := Fast()
	lin := measureSynthetic(t, c, workload.StructLinear, 8)
	twoWay := measureSynthetic(t, c, workload.StructTwoWayJoin, 8)
	threeWay := measureSynthetic(t, c, workload.StructThreeJoin, 8)
	if !(lin < threeWay) || !(twoWay < threeWay) {
		t.Errorf("O1 tipping point missing: linear=%.3f 2-way=%.3f 3-way=%.3f", lin, twoWay, threeWay)
	}
}

func TestO1FilterChainsStayConsistent(t *testing.T) {
	// "Initially, adding filters keeps latency consistent across
	// parallelism categories": for the linear structure, latency from M
	// to XXL varies within a modest band (no saturation collapse, no
	// blow-up).
	c := Fast()
	m := measureSynthetic(t, c, workload.StructLinear, core.CatM.Degree())
	xl := measureSynthetic(t, c, workload.StructLinear, core.CatXL.Degree())
	xxl := measureSynthetic(t, c, workload.StructLinear, core.CatXXL.Degree())
	for _, v := range []float64{xl, xxl} {
		if v > m*1.6 || v < m/1.6 {
			t.Errorf("O1: linear latency not consistent: M=%.3f XL=%.3f XXL=%.3f", m, xl, xxl)
		}
	}
}

func TestO2ParallelismParadoxForAD(t *testing.T) {
	// "Beyond a certain threshold of parallelism (128) … the overhead of
	// managing parallel operations … outweighs the benefits": the AD
	// application's heavy-state UDO degrades sharply past XL.
	c := Fast()
	l := measureApp(t, c, "AD", core.CatL.Degree())
	xxl := measureApp(t, c, "AD", core.CatXXL.Degree())
	if xxl <= l {
		t.Errorf("O2 paradox missing: AD L=%.3fs XXL=%.3fs", l, xxl)
	}
}

func TestO2MultiWayJoinGainsBecomeNegligible(t *testing.T) {
	// "performance improvements in multi-way joins are small or
	// negligible as parallelism increases from 128 to 256".
	c := Fast()
	xl := measureSynthetic(t, c, workload.StructFiveJoin, core.CatXL.Degree())
	xxl := measureSynthetic(t, c, workload.StructFiveJoin, core.CatXXL.Degree())
	rel := (xl - xxl) / xl
	if rel > 0.25 {
		t.Errorf("O2: 5-way join still gains %.0f%% from XL→XXL; expected negligible", rel*100)
	}
}

func TestO3DataIntensiveUDOsGainMost(t *testing.T) {
	// SA, SG, SD (data-intensive UDOs) improve far more with parallelism
	// than LR (standard operators).
	c := Fast()
	gain := func(code string) float64 {
		xs := measureApp(t, c, code, core.CatXS.Degree())
		l := measureApp(t, c, code, core.CatL.Degree())
		return xs / l
	}
	sd, sa, lr := gain("SD"), gain("SA"), gain("LR")
	if sd < 3 {
		t.Errorf("O3: SD gains only %.2f× from XS→L, want data-intensive speed-up", sd)
	}
	if sa < 2 {
		t.Errorf("O3: SA gains only %.2f× from XS→L", sa)
	}
	if lr > sd || lr > sa {
		t.Errorf("O3: standard-operator LR gains %.2f× ≥ data-intensive apps (SD %.2f×, SA %.2f×)", lr, sd, sa)
	}
}

func TestO4NonLinearParallelismEffect(t *testing.T) {
	// SG's improvement is concentrated at higher parallelism: the move
	// XS→S barely helps while S→L unlocks the speed-up (non-linearity).
	c := Fast()
	xs := measureApp(t, c, "SG", core.CatXS.Degree())
	s := measureApp(t, c, "SG", core.CatS.Degree())
	l := measureApp(t, c, "SG", core.CatL.Degree())
	firstStep := xs - s
	laterStep := s - l
	if laterStep <= firstStep {
		t.Errorf("O4: SG improvement linear or front-loaded: XS=%.3f S=%.3f L=%.3f", xs, s, l)
	}
}

func TestO5HeterogeneousHardwareHelpsSomeAppsNotAD(t *testing.T) {
	if testing.Short() {
		t.Skip("heterogeneous sweep is slow")
	}
	// "applications SA, CA, SD significantly benefited … AD struggles to
	// improve in heterogeneous configuration."
	c := Fast()
	ratio := func(code string) float64 {
		cores8 := measureAppOn(t, c, code, 8, "m510")
		cores16 := measureAppOn(t, c, code, 16, "c6525_25g")
		return cores8 / cores16
	}
	sd, ca, ad := ratio("SD"), ratio("CA"), ratio("AD")
	if sd < 1.5 {
		t.Errorf("O5: SD improves only %.2f× on heterogeneous hardware", sd)
	}
	if ca < 1.5 {
		t.Errorf("O5: CA improves only %.2f× on heterogeneous hardware", ca)
	}
	if ad >= sd || ad >= ca {
		t.Errorf("O5: AD (%.2f×) should benefit less than SD (%.2f×) and CA (%.2f×)", ad, sd, ca)
	}
}

func TestO6NoConsistentBalancingPoint(t *testing.T) {
	if testing.Short() {
		t.Skip("fig4-bottom sweep is slow")
	}
	c := Fast()
	structures := []workload.Structure{workload.StructLinear, workload.StructTwoWayJoin}
	cats := []core.ParallelismCategory{core.CatXS, core.CatS, core.CatM, core.CatL, core.CatXL}
	fig, err := c.Exp2Synthetic(context.Background(), cats, structures)
	if err != nil {
		t.Fatal(err)
	}
	argmins := map[string]bool{}
	for _, s := range fig.Series {
		bestCat, bestY := "", 0.0
		xsY, _ := s.Get("XS")
		for _, p := range s.Points {
			if bestCat == "" || p.Y < bestY {
				bestCat, bestY = p.X, p.Y
			}
		}
		// Parallelism helps every cluster initially …
		if bestCat == "XS" {
			t.Errorf("O6: cluster %s is best at XS; parallelism should help", s.Label)
		}
		if xsY < bestY*1.3 {
			t.Errorf("O6: cluster %s gains <30%% from parallelism", s.Label)
		}
		argmins[s.Label+"="+bestCat] = true
		_ = bestY
	}
	// … but the balancing point is not the same everywhere.
	distinct := map[string]bool{}
	for k := range argmins {
		distinct[k[len(k)-2:]] = true
	}
	if len(distinct) < 2 {
		t.Logf("O6 note: all clusters share one balancing point in this configuration: %v", argmins)
	}
}

func TestO7SyntheticGainsFromHeterogeneityAreModest(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-cluster sweep is slow")
	}
	// O7: there is no clear homogeneous/heterogeneous winner — synthetic
	// (standard-operator) queries benefit far less from the faster
	// heterogeneous clusters than data-intensive applications do.
	c := Fast()
	plan, err := c.SyntheticPlan(workload.StructTwoWayJoin, 8)
	if err != nil {
		t.Fatal(err)
	}
	ho, err := c.Measure(context.Background(), plan, c.Homogeneous())
	if err != nil {
		t.Fatal(err)
	}
	plan16, _ := c.SyntheticPlan(workload.StructTwoWayJoin, 16)
	he, err := c.Measure(context.Background(), plan16, c.HeteroEpyc())
	if err != nil {
		t.Fatal(err)
	}
	synthGain := ho.LatencyP50 / he.LatencyP50
	sdGain := measureAppOn(t, c, "SD", 8, "m510") / measureAppOn(t, c, "SD", 16, "c6525_25g")
	if synthGain >= sdGain {
		t.Errorf("O7: synthetic hetero gain %.2f× should be below data-intensive gain %.2f×", synthGain, sdGain)
	}
}

func TestO8GNNOutperformsOtherCostModels(t *testing.T) {
	if testing.Short() {
		t.Skip("full cost-model comparison is slow")
	}
	c := Fast()
	corpus, err := c.BuildCorpus(context.Background(), "random", workload.Structures, 500, c.Homogeneous(), 3)
	if err != nil {
		t.Fatal(err)
	}
	_, evs, err := c.Exp3Models(corpus.Dataset, ml.TrainOptions{MaxEpochs: 200, Patience: 15, LearningRate: 3e-3})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]*mlmanager.Evaluation{}
	for _, ev := range evs {
		byName[ev.Model] = ev
	}
	gnn := byName["GNN"].MedianQ
	for _, other := range []string{"LR", "MLP", "RF"} {
		// Allow a small tolerance against ties; the paper's O8 claim is
		// that the GNN consistently surpasses the others.
		if gnn > byName[other].MedianQ*1.02 {
			t.Errorf("O8: GNN median q-error %.3f worse than %s %.3f", gnn, other, byName[other].MedianQ)
		}
	}
	if gnn > byName["LR"].MedianQ*0.9 {
		t.Errorf("O8: GNN %.3f should clearly beat linear regression %.3f", gnn, byName["LR"].MedianQ)
	}
}

func TestO9RuleBasedEnumerationIsDataAndTimeEfficient(t *testing.T) {
	if testing.Short() {
		t.Skip("strategy comparison is slow")
	}
	c := Fast()
	c.Cfg.Duration = 6
	c.Cfg.SourceBatches = 48
	sizes := []int{25, 75, 200}
	curves, err := c.Exp3Strategies(context.Background(), sizes, 30, ml.TrainOptions{MaxEpochs: 80, Patience: 10, LearningRate: 3e-3})
	if err != nil {
		t.Fatal(err)
	}
	rule, random := curves.Curves["rule-based"], curves.Curves["random"]
	last := len(sizes) - 1
	// Accuracy: the rule-based corpus must clearly beat the random corpus
	// with the same number of training queries.
	if rule[last].SeenMedianQ >= random[last].SeenMedianQ*0.95 {
		t.Errorf("O9: rule-based final q-error %.3f not clearly below random %.3f",
			rule[last].SeenMedianQ, random[last].SeenMedianQ)
	}
	// Data efficiency: random needs more queries than rule-based to reach
	// rule-based's achievable accuracy — ideally it never does within the
	// sweep (the paper: rule-based needs ≈⅓ of the queries).
	target := rule[last].SeenMedianQ * 1.1
	ruleN := QueriesToReach(rule, target)
	randN := QueriesToReach(random, target)
	if ruleN < 0 {
		t.Fatalf("O9: rule-based never reaches its own target %.3f", target)
	}
	if randN >= 0 && randN <= ruleN {
		t.Errorf("O9: random reaches q≤%.3f with %d queries, rule-based needs %d", target, randN, ruleN)
	}
	// Total (collection + training) time advantage at the final size.
	ruleT := curves.TotalTime["rule-based"][last]
	randT := curves.TotalTime["random"][last]
	if float64(randT) < 1.2*float64(ruleT) {
		t.Errorf("O9: random total time %v not clearly above rule-based %v", randT, ruleT)
	}
}

func mustApp(t *testing.T, code string) *apps.App {
	t.Helper()
	a, err := apps.ByCode(code)
	if err != nil {
		t.Fatal(err)
	}
	return a
}
