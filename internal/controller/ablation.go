package controller

import (
	"context"
	"fmt"

	"pdspbench/internal/core"
	"pdspbench/internal/metrics"
	"pdspbench/internal/scaling"
	"pdspbench/internal/workload"
)

// ExpPartitioning is an ablation over the data-partitioning strategies
// of Table 3 (forward, rebalance, hashing) under uniform (poisson) and
// skewed (zipf) key distributions — the dimension the paper's related
// work critique says existing benchmarks "neglect" ("critical elements
// such as ... data partitioning strategies"). Hash partitioning under
// skew concentrates load on the hot partition's instance; rebalance
// spreads it evenly but cannot feed keyed state.
func (c *Controller) ExpPartitioning(ctx context.Context, degree int) (*metrics.Figure, error) {
	if degree <= 0 {
		degree = 8
	}
	cl := c.Homogeneous()
	fig := &metrics.Figure{
		ID:     metrics.FigAblationPartitioning,
		Title:  "Partitioning strategies under uniform and skewed keys",
		XLabel: "partitioning",
		YLabel: "median latency (ms)",
	}
	for _, dist := range []string{"poisson", "zipf"} {
		series := metrics.Series{Label: dist}
		for _, part := range []core.PartitionStrategy{core.PartitionForward, core.PartitionRebalance, core.PartitionHash} {
			p := c.baseParams()
			p.Partition = part
			p.Distribution = dist
			plan, err := workload.Build(workload.StructTwoFilter, p)
			if err != nil {
				return nil, err
			}
			plan.SetUniformParallelism(degree)
			rec, err := c.Measure(ctx, plan, cl)
			if err != nil {
				return nil, err
			}
			series.Points = append(series.Points, metrics.Point{X: part.String(), Y: rec.LatencyP50 * 1000})
		}
		fig.Series = append(fig.Series, series)
	}
	return fig, nil
}

// ExpAutoscaler compares three ways of choosing parallelism for one
// workload: the static rule-based enumeration (Section 3.1), the
// DS2-style reactive autoscaler (internal/scaling), and fixed category
// degrees — an ablation of the design choice behind the rule-based
// strategy. It returns one series with the measured latency of each and
// the total instances deployed.
func (c *Controller) ExpAutoscaler(ctx context.Context, s workload.Structure) (*metrics.Figure, error) {
	cl := c.Homogeneous()
	base, err := workload.Build(s, c.baseParams())
	if err != nil {
		return nil, err
	}
	fig := &metrics.Figure{
		ID:     metrics.FigAblationAutoscaler,
		Title:  fmt.Sprintf("Parallelism selection for %s: static rules vs reactive scaling vs fixed", s),
		XLabel: "method",
		YLabel: "value",
	}
	latency := metrics.Series{Label: "median latency (ms)"}
	instances := metrics.Series{Label: "instances deployed"}

	measure := func(label string, plan *core.PQP) error {
		rec, err := c.Measure(ctx, plan, cl)
		if err != nil {
			return err
		}
		latency.Points = append(latency.Points, metrics.Point{X: label, Y: rec.LatencyP50 * 1000})
		instances.Points = append(instances.Points, metrics.Point{X: label, Y: float64(plan.TotalInstances())})
		return nil
	}

	// Static rule-based enumeration.
	enum := workload.NewEnumerator(c.Seed)
	ruleStrat, err := workload.StrategyByName("rule-based", enum.Rand())
	if err != nil {
		return nil, err
	}
	if err := measure("rule-based", ruleStrat.Enumerate(base, cl, 1)[0]); err != nil {
		return nil, err
	}

	// Reactive DS2-style autoscaling.
	scaler := scaling.New(cl)
	scaler.Cfg = c.Cfg
	scaled, err := scaler.Scale(base)
	if err != nil {
		return nil, err
	}
	if err := measure("autoscaled", scaled.Plan); err != nil {
		return nil, err
	}

	// Fixed categories (the Exp-1 sweep's extremes).
	for _, cat := range []core.ParallelismCategory{core.CatXS, core.CatM, core.CatXXL} {
		fixed := base.Clone()
		fixed.SetUniformParallelism(cat.Degree())
		if err := measure("fixed-"+cat.String(), fixed); err != nil {
			return nil, err
		}
	}
	fig.Series = append(fig.Series, latency, instances)
	return fig, nil
}
