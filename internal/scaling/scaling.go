// Package scaling implements a DS2-style reactive autoscaler [Kalavri et
// al., OSDI'18 — the paper's citation 35 behind its rule-based
// enumeration strategy]: it measures each operator's true utilization by
// executing the plan on the cluster simulator, computes the parallelism
// that would bring every operator to a target utilization, and iterates
// until the degrees converge ("three steps is all you need"). Where the
// workload generator's rule-based strategy sizes operators from static
// rate propagation, the autoscaler closes the loop with observed
// metrics, which also captures effects static analysis misses (shuffle
// overhead, contention, stragglers on heterogeneous nodes).
package scaling

import (
	"fmt"
	"math"

	"pdspbench/internal/cluster"
	"pdspbench/internal/core"
	"pdspbench/internal/simengine"
)

// Autoscaler converges a plan's parallelism degrees.
type Autoscaler struct {
	// Cfg configures the measurement runs.
	Cfg simengine.Config
	// Cluster is the deployment target.
	Cluster *cluster.Cluster
	// Placement selects the instance placement per iteration.
	Placement cluster.Strategy
	// TargetUtilization is the per-instance busy fraction to aim for
	// (default 0.7, leaving DS2's recommended headroom).
	TargetUtilization float64
	// MaxIterations bounds the control loop (default 6).
	MaxIterations int
}

// Step is one control-loop iteration's record.
type Step struct {
	Degrees     map[string]int     `json:"degrees"`
	Utilization map[string]float64 `json:"utilization"`
	LatencyP50  float64            `json:"latency_p50"`
	Changed     bool               `json:"changed"`
}

// Result is the converged outcome.
type Result struct {
	Plan       *core.PQP
	Steps      []Step
	Iterations int
	Converged  bool
}

// New returns an autoscaler with defaults.
func New(cl *cluster.Cluster) *Autoscaler {
	return &Autoscaler{
		Cfg:               simengine.Defaults(),
		Cluster:           cl,
		Placement:         cluster.PlaceRoundRobin,
		TargetUtilization: 0.7,
		MaxIterations:     6,
	}
}

// Scale iterates measure → resize until the degrees stop changing or the
// iteration budget runs out. The input plan is not mutated.
func (a *Autoscaler) Scale(plan *core.PQP) (*Result, error) {
	if a.Cluster == nil || len(a.Cluster.Nodes) == 0 {
		return nil, fmt.Errorf("scaling: no cluster configured")
	}
	target := a.TargetUtilization
	if target <= 0 || target >= 1 {
		target = 0.7
	}
	maxIter := a.MaxIterations
	if maxIter <= 0 {
		maxIter = 6
	}
	capD := a.Cluster.TotalCores()
	if capD > core.MaxDegree {
		capD = core.MaxDegree
	}

	current := plan.Clone()
	res := &Result{}
	for iter := 0; iter < maxIter; iter++ {
		pl, err := cluster.Place(current, a.Cluster, a.Placement)
		if err != nil {
			return nil, err
		}
		cfg := a.Cfg
		cfg.Seed = a.Cfg.Seed + int64(iter)
		sim, err := simengine.Simulate(current, pl, cfg)
		if err != nil {
			return nil, err
		}
		step := Step{
			Degrees:     map[string]int{},
			Utilization: sim.Utilization,
			LatencyP50:  sim.LatencyP50,
		}
		for _, op := range current.Operators {
			step.Degrees[op.ID] = op.Parallelism
		}
		// DS2's core step: optimal parallelism scales the current degree
		// by observed-over-target utilization.
		for _, op := range current.Operators {
			if op.Kind == core.OpSource || op.Kind == core.OpSink {
				continue
			}
			util := sim.Utilization[op.ID]
			want := int(math.Ceil(float64(op.Parallelism) * util / target))
			if want < 1 {
				want = 1
			}
			if want > capD {
				want = capD
			}
			// Damp oscillation: never shrink by more than half per step.
			if want < op.Parallelism/2 {
				want = op.Parallelism / 2
				if want < 1 {
					want = 1
				}
			}
			if want != op.Parallelism {
				op.Parallelism = want
				step.Changed = true
			}
		}
		res.Steps = append(res.Steps, step)
		res.Iterations = iter + 1
		if !step.Changed {
			res.Converged = true
			break
		}
	}
	res.Plan = current
	return res, nil
}

// MaxUtilization returns the busiest processing operator's utilization
// from a step.
func (s Step) MaxUtilization() float64 {
	var m float64
	for _, u := range s.Utilization {
		if u > m {
			m = u
		}
	}
	return m
}
