package scaling

import (
	"testing"

	"pdspbench/internal/cluster"
	"pdspbench/internal/core"
	"pdspbench/internal/simengine"
	"pdspbench/internal/tuple"
)

// heavyPlan is a saturating UDO pipeline at parallelism 1.
func heavyPlan(rate float64) *core.PQP {
	p := core.NewPQP("autoscale-test", "udo")
	schema := tuple.NewSchema(
		tuple.Field{Name: "k", Type: tuple.TypeInt},
		tuple.Field{Name: "v", Type: tuple.TypeDouble},
	)
	p.Add(&core.Operator{ID: "src", Kind: core.OpSource, Parallelism: 1,
		Source: &core.SourceSpec{Schema: schema, EventRate: rate}, OutWidth: 2})
	p.Add(&core.Operator{ID: "u", Kind: core.OpUDO, Parallelism: 1, Partition: core.PartitionHash,
		UDO: &core.UDOSpec{Name: "heavy", CostFactor: 12, Selectivity: 0.5}, OutWidth: 2})
	p.Add(&core.Operator{ID: "light", Kind: core.OpFilter, Parallelism: 1, Partition: core.PartitionRebalance,
		Filter:   &core.FilterSpec{Field: 1, Fn: core.FilterGreater, Literal: tuple.Double(0), Selectivity: 0.9},
		OutWidth: 2})
	p.Add(&core.Operator{ID: "sink", Kind: core.OpSink, Parallelism: 1, Partition: core.PartitionRebalance})
	p.Connect("src", "u")
	p.Connect("u", "light")
	p.Connect("light", "sink")
	return p
}

func fastScaler(cl *cluster.Cluster) *Autoscaler {
	a := New(cl)
	a.Cfg = simengine.Defaults()
	a.Cfg.Duration = 6
	a.Cfg.SourceBatches = 48
	return a
}

func TestScaleRelievesSaturation(t *testing.T) {
	cl := cluster.NewHomogeneous("ho", cluster.M510, 5)
	a := fastScaler(cl)
	res, err := a.Scale(heavyPlan(400_000))
	if err != nil {
		t.Fatal(err)
	}
	first, last := res.Steps[0], res.Steps[len(res.Steps)-1]
	if first.MaxUtilization() < 0.98 {
		t.Fatalf("test premise broken: initial plan not saturated (util %.2f)", first.MaxUtilization())
	}
	if got := res.Plan.Op("u").Parallelism; got < 4 {
		t.Errorf("heavy UDO scaled to %d instances; 400k ev/s × 12µs needs ≥5 cores", got)
	}
	if last.LatencyP50 >= first.LatencyP50 {
		t.Errorf("latency did not improve: %.3fs → %.3fs", first.LatencyP50, last.LatencyP50)
	}
}

func TestScaleConvergesQuickly(t *testing.T) {
	// DS2's claim — and the paper's rationale for rule-based enumeration:
	// few iterations suffice.
	cl := cluster.NewHomogeneous("ho", cluster.M510, 5)
	a := fastScaler(cl)
	res, err := a.Scale(heavyPlan(200_000))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Errorf("did not converge within %d iterations", a.MaxIterations)
	}
	if res.Iterations > 5 {
		t.Errorf("took %d iterations; DS2-style scaling should need ~3", res.Iterations)
	}
}

func TestScaleDoesNotInflateLightOperators(t *testing.T) {
	cl := cluster.NewHomogeneous("ho", cluster.M510, 5)
	a := fastScaler(cl)
	res, err := a.Scale(heavyPlan(200_000))
	if err != nil {
		t.Fatal(err)
	}
	heavy := res.Plan.Op("u").Parallelism
	light := res.Plan.Op("light").Parallelism
	if light > heavy {
		t.Errorf("light filter (%d) scaled above heavy UDO (%d)", light, heavy)
	}
	if light > 4 {
		t.Errorf("light filter scaled to %d for a thinned ~100k ev/s stream", light)
	}
}

func TestScaleIdempotentOnConvergedPlan(t *testing.T) {
	cl := cluster.NewHomogeneous("ho", cluster.M510, 5)
	a := fastScaler(cl)
	res1, err := a.Scale(heavyPlan(200_000))
	if err != nil {
		t.Fatal(err)
	}
	res2, err := a.Scale(res1.Plan)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Iterations > 2 {
		t.Errorf("re-scaling a converged plan took %d iterations", res2.Iterations)
	}
	for _, op := range res2.Plan.Operators {
		before := res1.Plan.Op(op.ID).Parallelism
		if diff := op.Parallelism - before; diff > before/2+1 || diff < -(before/2+1) {
			t.Errorf("converged degree of %s moved %d → %d", op.ID, before, op.Parallelism)
		}
	}
}

func TestScaleDoesNotMutateInput(t *testing.T) {
	cl := cluster.NewHomogeneous("ho", cluster.M510, 5)
	plan := heavyPlan(200_000)
	before := plan.String()
	if _, err := fastScaler(cl).Scale(plan); err != nil {
		t.Fatal(err)
	}
	if plan.String() != before {
		t.Error("Scale mutated the input plan")
	}
}

func TestScaleRespectsCoreBudget(t *testing.T) {
	cl := cluster.NewHomogeneous("tiny", cluster.M510, 1) // 8 cores
	a := fastScaler(cl)
	res, err := a.Scale(heavyPlan(4_000_000)) // impossible demand
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range res.Plan.Operators {
		if op.Parallelism > cl.TotalCores() {
			t.Errorf("%s scaled to %d on an %d-core cluster", op.ID, op.Parallelism, cl.TotalCores())
		}
	}
}

func TestScaleErrorsWithoutCluster(t *testing.T) {
	a := &Autoscaler{}
	if _, err := a.Scale(heavyPlan(1000)); err == nil {
		t.Error("Scale without a cluster should fail")
	}
}

func TestScaleOnHeterogeneousCluster(t *testing.T) {
	cl := cluster.NewHeterogeneous("he", []cluster.NodeType{cluster.C6525_25G, cluster.C6320}, 4)
	a := fastScaler(cl)
	res, err := a.Scale(heavyPlan(400_000))
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.Op("u").Parallelism < 2 {
		t.Errorf("heterogeneous scaling produced degree %d", res.Plan.Op("u").Parallelism)
	}
}
