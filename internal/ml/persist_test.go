package ml_test

import (
	"testing"

	"pdspbench/internal/ml"
	"pdspbench/internal/ml/gnn"
	"pdspbench/internal/ml/linreg"
	"pdspbench/internal/ml/mlp"
	"pdspbench/internal/ml/mltest"
	"pdspbench/internal/ml/rf"
)

func factories() map[string]func() ml.Persistable {
	return map[string]func() ml.Persistable{
		"LR":  func() ml.Persistable { return linreg.New() },
		"MLP": func() ml.Persistable { return mlp.New() },
		"RF":  func() ml.Persistable { return rf.New() },
		"GNN": func() ml.Persistable { return gnn.New() },
	}
}

func TestSaveLoadRoundTripPreservesPredictions(t *testing.T) {
	ds := mltest.Corpus(150, 31, nil)
	train, val, test := ds.Split(0.7, 0.15, 1)
	opts := ml.TrainOptions{MaxEpochs: 20, Patience: 5, LearningRate: 3e-3}
	for name, f := range factories() {
		m := f()
		if _, err := m.Train(train, val, opts); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		data, err := ml.SaveModel(m)
		if err != nil {
			t.Fatalf("%s: save: %v", name, err)
		}
		restored, err := ml.LoadModel(data, factories())
		if err != nil {
			t.Fatalf("%s: load: %v", name, err)
		}
		if restored.Name() != m.Name() {
			t.Errorf("%s: restored as %s", name, restored.Name())
		}
		for i, e := range test.Examples {
			if got, want := restored.Predict(e), m.Predict(e); got != want {
				t.Fatalf("%s: prediction %d changed after round trip: %v vs %v", name, i, got, want)
			}
		}
	}
}

func TestSaveUntrainedFails(t *testing.T) {
	for name, f := range factories() {
		if _, err := ml.SaveModel(f()); err == nil {
			t.Errorf("%s: saving an untrained model should fail", name)
		}
	}
}

func TestLoadModelErrors(t *testing.T) {
	if _, err := ml.LoadModel([]byte("{not json"), factories()); err == nil {
		t.Error("garbage envelope accepted")
	}
	if _, err := ml.LoadModel([]byte(`{"model":"XGB","params":{}}`), factories()); err == nil {
		t.Error("unknown architecture accepted")
	}
	if _, err := ml.LoadModel([]byte(`{"model":"LR","params":{"w":[]}}`), factories()); err == nil {
		t.Error("empty weights accepted")
	}
	if _, err := ml.LoadModel([]byte(`{"model":"RF","params":[]}`), factories()); err == nil {
		t.Error("empty forest accepted")
	}
	if _, err := ml.LoadModel([]byte(`{"model":"GNN","params":{"hidden":0,"layers":0,"blocks":[]}}`), factories()); err == nil {
		t.Error("degenerate GNN export accepted")
	}
	if _, err := ml.LoadModel([]byte(`{"model":"MLP","params":{"dims":[4],"blocks":[]}}`), factories()); err == nil {
		t.Error("malformed MLP export accepted")
	}
}
