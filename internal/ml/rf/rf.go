// Package rf implements the random-forest cost model of the paper's
// Exp-3 [Chen et al., TPDS'16]: bagged CART regression trees with
// per-split random feature subsets, over the flat PQP encoding.
package rf

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"pdspbench/internal/ml"
)

// Model is a bagged regression forest predicting log latency.
type Model struct {
	// Trees is the ensemble size; zero selects 50.
	Trees int
	// MaxDepth bounds tree depth; zero selects 12.
	MaxDepth int
	// MinLeaf is the minimum samples per leaf; zero selects 3.
	MinLeaf int

	forest []*node
}

// New returns an untrained model with default hyperparameters.
func New() *Model { return &Model{} }

// Name implements ml.Model.
func (m *Model) Name() string { return "RF" }

type node struct {
	feature int
	thresh  float64
	left    *node
	right   *node
	value   float64 // leaves
	leaf    bool
}

// Train implements ml.Model. Trees are grown to completion (no epochs);
// stats report the ensemble build as one epoch per tree for the training
// -overhead accounting.
func (m *Model) Train(train, val *ml.Dataset, opts ml.TrainOptions) (*ml.TrainStats, error) {
	if err := ml.CheckDataset(train, true, false); err != nil {
		return nil, err
	}
	if train.Len() == 0 {
		return nil, fmt.Errorf("rf: empty training set")
	}
	opts = opts.Defaults()
	start := time.Now()
	rng := rand.New(rand.NewSource(opts.Seed))

	nTrees := m.Trees
	if nTrees <= 0 {
		nTrees = 50
	}
	maxDepth := m.MaxDepth
	if maxDepth <= 0 {
		maxDepth = 12
	}
	minLeaf := m.MinLeaf
	if minLeaf <= 0 {
		minLeaf = 3
	}

	n := train.Len()
	dim := len(train.Examples[0].Flat)
	mtry := int(math.Ceil(float64(dim) / 3)) // regression default: p/3

	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i, e := range train.Examples {
		xs[i] = e.Flat
		ys[i] = e.LogLabel()
	}

	m.forest = make([]*node, nTrees)
	for t := 0; t < nTrees; t++ {
		// Bootstrap sample.
		idx := make([]int, n)
		for i := range idx {
			idx[i] = rng.Intn(n)
		}
		m.forest[t] = grow(xs, ys, idx, 0, maxDepth, minLeaf, mtry, rng)
	}
	stats := &ml.TrainStats{
		Epochs:    nTrees,
		TrainTime: time.Since(start),
		Stopped:   "ensemble-complete",
	}
	stats.FinalValLoss = ml.ValLoss(m, val)
	return stats, nil
}

// grow recursively builds a CART regression tree.
func grow(xs [][]float64, ys []float64, idx []int, depth, maxDepth, minLeaf, mtry int, rng *rand.Rand) *node {
	mean, sse := meanSSE(ys, idx)
	if depth >= maxDepth || len(idx) < 2*minLeaf || sse < 1e-12 {
		return &node{leaf: true, value: mean}
	}
	dim := len(xs[0])
	bestGain := 0.0
	bestFeat, bestThresh := -1, 0.0
	// Random feature subset per split.
	feats := rng.Perm(dim)[:mtry]
	vals := make([]float64, len(idx))
	for _, f := range feats {
		for i, id := range idx {
			vals[i] = xs[id][f]
		}
		sorted := append([]float64(nil), vals...)
		sort.Float64s(sorted)
		// Candidate thresholds: quartile cuts keep split search cheap
		// while covering the value range.
		for _, q := range []float64{0.25, 0.5, 0.75} {
			th := sorted[int(q*float64(len(sorted)-1))]
			gain := splitGain(xs, ys, idx, f, th, sse, minLeaf)
			if gain > bestGain {
				bestGain, bestFeat, bestThresh = gain, f, th
			}
		}
	}
	if bestFeat < 0 {
		return &node{leaf: true, value: mean}
	}
	var li, ri []int
	for _, id := range idx {
		if xs[id][bestFeat] <= bestThresh {
			li = append(li, id)
		} else {
			ri = append(ri, id)
		}
	}
	if len(li) < minLeaf || len(ri) < minLeaf {
		return &node{leaf: true, value: mean}
	}
	return &node{
		feature: bestFeat,
		thresh:  bestThresh,
		left:    grow(xs, ys, li, depth+1, maxDepth, minLeaf, mtry, rng),
		right:   grow(xs, ys, ri, depth+1, maxDepth, minLeaf, mtry, rng),
	}
}

func meanSSE(ys []float64, idx []int) (mean, sse float64) {
	if len(idx) == 0 {
		return 0, 0
	}
	for _, i := range idx {
		mean += ys[i]
	}
	mean /= float64(len(idx))
	for _, i := range idx {
		d := ys[i] - mean
		sse += d * d
	}
	return mean, sse
}

// splitGain is the SSE reduction of splitting idx at (f, th).
func splitGain(xs [][]float64, ys []float64, idx []int, f int, th, parentSSE float64, minLeaf int) float64 {
	var ln, rn int
	var lsum, rsum float64
	for _, id := range idx {
		if xs[id][f] <= th {
			ln++
			lsum += ys[id]
		} else {
			rn++
			rsum += ys[id]
		}
	}
	if ln < minLeaf || rn < minLeaf {
		return 0
	}
	lmean, rmean := lsum/float64(ln), rsum/float64(rn)
	var sse float64
	for _, id := range idx {
		var d float64
		if xs[id][f] <= th {
			d = ys[id] - lmean
		} else {
			d = ys[id] - rmean
		}
		sse += d * d
	}
	return parentSSE - sse
}

// Predict implements ml.Model: the exponentiated mean of tree outputs.
func (m *Model) Predict(e ml.Example) float64 {
	if len(m.forest) == 0 {
		return 1
	}
	var sum float64
	for _, t := range m.forest {
		sum += t.predict(e.Flat)
	}
	return math.Exp(sum / float64(len(m.forest)))
}

func (n *node) predict(x []float64) float64 {
	for !n.leaf {
		if x[n.feature] <= n.thresh {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.value
}

// nodeExport serializes one tree node recursively.
type nodeExport struct {
	Leaf    bool        `json:"leaf"`
	Value   float64     `json:"value,omitempty"`
	Feature int         `json:"feature,omitempty"`
	Thresh  float64     `json:"thresh,omitempty"`
	Left    *nodeExport `json:"left,omitempty"`
	Right   *nodeExport `json:"right,omitempty"`
}

func exportNode(n *node) *nodeExport {
	if n == nil {
		return nil
	}
	if n.leaf {
		return &nodeExport{Leaf: true, Value: n.value}
	}
	return &nodeExport{
		Feature: n.feature, Thresh: n.thresh,
		Left: exportNode(n.left), Right: exportNode(n.right),
	}
}

func importNode(e *nodeExport) (*node, error) {
	if e == nil {
		return nil, fmt.Errorf("rf: missing subtree in export")
	}
	if e.Leaf {
		return &node{leaf: true, value: e.Value}, nil
	}
	l, err := importNode(e.Left)
	if err != nil {
		return nil, err
	}
	r, err := importNode(e.Right)
	if err != nil {
		return nil, err
	}
	return &node{feature: e.Feature, thresh: e.Thresh, left: l, right: r}, nil
}

// MarshalModel implements ml.Persistable.
func (m *Model) MarshalModel() ([]byte, error) {
	if len(m.forest) == 0 {
		return nil, fmt.Errorf("rf: model not trained")
	}
	trees := make([]*nodeExport, len(m.forest))
	for i, t := range m.forest {
		trees[i] = exportNode(t)
	}
	return json.Marshal(trees)
}

// UnmarshalModel implements ml.Persistable.
func (m *Model) UnmarshalModel(data []byte) error {
	var trees []*nodeExport
	if err := json.Unmarshal(data, &trees); err != nil {
		return err
	}
	if len(trees) == 0 {
		return fmt.Errorf("rf: export has no trees")
	}
	m.forest = make([]*node, len(trees))
	for i, e := range trees {
		n, err := importNode(e)
		if err != nil {
			return err
		}
		m.forest[i] = n
	}
	return nil
}
