package rf

import (
	"math"
	"math/rand"
	"testing"

	"pdspbench/internal/ml"
	"pdspbench/internal/ml/mltest"
	"pdspbench/internal/stats"
)

func TestFitsStepFunction(t *testing.T) {
	// A piecewise-constant target is the natural habitat of trees.
	rng := rand.New(rand.NewSource(2))
	ds := &ml.Dataset{}
	for i := 0; i < 400; i++ {
		x := []float64{rng.Float64(), rng.Float64()}
		y := 1.0
		if x[0] > 0.5 {
			y = 10.0
		}
		if x[1] > 0.7 {
			y *= 3
		}
		ds.Examples = append(ds.Examples, ml.Example{Flat: x, Latency: y})
	}
	train, val, test := ds.Split(0.7, 0.15, 1)
	m := New()
	if _, err := m.Train(train, val, ml.TrainOptions{}); err != nil {
		t.Fatal(err)
	}
	q := stats.NewSampleFrom(ml.QErrors(m, test)).Median()
	if q > 1.3 {
		t.Errorf("median q-error %v on a step function", q)
	}
}

func TestLearnsWorkloadCorpus(t *testing.T) {
	ds := mltest.Corpus(400, 9, nil)
	train, val, test := ds.Split(0.7, 0.15, 1)
	m := New()
	st, err := m.Train(train, val, ml.TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Epochs != 50 {
		t.Errorf("epochs = %d, want 50 (one per tree)", st.Epochs)
	}
	q := stats.NewSampleFrom(ml.QErrors(m, test)).Median()
	if q > 2.0 {
		t.Errorf("median q-error %v on workload corpus", q)
	}
}

func TestPredictionsInsideLabelRange(t *testing.T) {
	// Averaged tree leaves cannot extrapolate beyond observed labels.
	ds := mltest.Corpus(200, 10, nil)
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, e := range ds.Examples {
		if e.Latency < lo {
			lo = e.Latency
		}
		if e.Latency > hi {
			hi = e.Latency
		}
	}
	train, val, test := ds.Split(0.7, 0.15, 1)
	m := New()
	if _, err := m.Train(train, val, ml.TrainOptions{}); err != nil {
		t.Fatal(err)
	}
	for _, e := range test.Examples {
		p := m.Predict(e)
		if p < lo*0.9 || p > hi*1.1 {
			t.Fatalf("prediction %v outside label range [%v, %v]", p, lo, hi)
		}
	}
}

func TestEmptyTrainingSetFails(t *testing.T) {
	if _, err := New().Train(&ml.Dataset{}, &ml.Dataset{}, ml.TrainOptions{}); err == nil {
		t.Error("training on empty set should fail")
	}
}

func TestUntrainedPredictIsFinite(t *testing.T) {
	p := New().Predict(ml.Example{Flat: []float64{1}})
	if math.IsNaN(p) || math.IsInf(p, 0) || p <= 0 {
		t.Errorf("untrained Predict = %v", p)
	}
}

func TestDeterministicForSeed(t *testing.T) {
	ds := mltest.Corpus(150, 11, nil)
	train, val, test := ds.Split(0.7, 0.15, 1)
	m1, m2 := New(), New()
	if _, err := m1.Train(train, val, ml.TrainOptions{Seed: 5}); err != nil {
		t.Fatal(err)
	}
	if _, err := m2.Train(train, val, ml.TrainOptions{Seed: 5}); err != nil {
		t.Fatal(err)
	}
	for _, e := range test.Examples {
		if m1.Predict(e) != m2.Predict(e) {
			t.Fatal("same seed produced different forests")
		}
	}
}
