package mlp

import (
	"math"
	"math/rand"
	"testing"

	"pdspbench/internal/ml"
	"pdspbench/internal/ml/mltest"
	"pdspbench/internal/stats"
)

func TestLearnsNonlinearFunction(t *testing.T) {
	// y = exp(x₀² + 0.5·x₁) is out of reach for a linear model; a small
	// MLP must fit it well.
	rng := rand.New(rand.NewSource(2))
	ds := &ml.Dataset{}
	for i := 0; i < 400; i++ {
		x := []float64{rng.Float64()*2 - 1, rng.Float64()*2 - 1}
		ds.Examples = append(ds.Examples, ml.Example{
			Flat: x, Latency: math.Exp(x[0]*x[0] + 0.5*x[1]),
		})
	}
	train, val, test := ds.Split(0.7, 0.15, 1)
	m := New()
	st, err := m.Train(train, val, ml.TrainOptions{MaxEpochs: 150, Patience: 15, LearningRate: 3e-3})
	if err != nil {
		t.Fatal(err)
	}
	q := stats.NewSampleFrom(ml.QErrors(m, test)).Median()
	if q > 1.25 {
		t.Errorf("median q-error %v on smooth nonlinear target (epochs=%d)", q, st.Epochs)
	}
}

func TestEarlyStoppingTriggers(t *testing.T) {
	// Pure-noise labels give nothing to learn: validation loss plateaus
	// and the patience rule must stop training before MaxEpochs.
	rng := rand.New(rand.NewSource(3))
	ds := &ml.Dataset{}
	for i := 0; i < 120; i++ {
		ds.Examples = append(ds.Examples, ml.Example{
			Flat:    []float64{rng.Float64()},
			Latency: math.Exp(rng.NormFloat64()),
		})
	}
	train, val, _ := ds.Split(0.7, 0.3, 1)
	m := New()
	st, err := m.Train(train, val, ml.TrainOptions{MaxEpochs: 500, Patience: 5})
	if err != nil {
		t.Fatal(err)
	}
	if st.Stopped != "early" {
		t.Errorf("training ran %d epochs without early stop on pure noise", st.Epochs)
	}
	if st.Epochs >= 500 {
		t.Errorf("epochs = %d, expected early termination", st.Epochs)
	}
}

func TestBeatsLinearBaselineOnWorkloadCorpus(t *testing.T) {
	ds := mltest.Corpus(400, 6, nil)
	train, val, test := ds.Split(0.7, 0.15, 1)
	m := New()
	if _, err := m.Train(train, val, ml.TrainOptions{MaxEpochs: 120, Patience: 12, LearningRate: 2e-3}); err != nil {
		t.Fatal(err)
	}
	q := stats.NewSampleFrom(ml.QErrors(m, test)).Median()
	if q > 2.5 {
		t.Errorf("median q-error %v on workload corpus", q)
	}
}

func TestEmptyTrainingSetFails(t *testing.T) {
	if _, err := New().Train(&ml.Dataset{}, &ml.Dataset{}, ml.TrainOptions{}); err == nil {
		t.Error("training on empty set should fail")
	}
}

func TestUntrainedPredictIsFinite(t *testing.T) {
	p := New().Predict(ml.Example{Flat: []float64{1}})
	if math.IsNaN(p) || math.IsInf(p, 0) || p <= 0 {
		t.Errorf("untrained Predict = %v", p)
	}
}

func TestBestWeightsRestoredAfterEarlyStop(t *testing.T) {
	// After training, the reported FinalValLoss must match the restored
	// weights' validation loss (best snapshot, not last epoch's).
	ds := mltest.Corpus(150, 8, nil)
	train, val, _ := ds.Split(0.7, 0.3, 1)
	m := New()
	st, err := m.Train(train, val, ml.TrainOptions{MaxEpochs: 60, Patience: 5})
	if err != nil {
		t.Fatal(err)
	}
	got := ml.ValLoss(m, val)
	if math.Abs(got-st.FinalValLoss) > 1e-9 {
		t.Errorf("restored val loss %v != reported best %v", got, st.FinalValLoss)
	}
}
