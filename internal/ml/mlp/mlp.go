// Package mlp implements the multi-layer-perceptron cost model of the
// paper's Exp-3: a ReLU network over the flat PQP encoding, trained with
// Adam on log-latency MSE, with the uniform early-stopping rule the ML
// Manager applies to every architecture.
package mlp

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"time"

	"pdspbench/internal/ml"
	"pdspbench/internal/ml/mlmath"
)

// Model is a feed-forward ReLU regressor.
type Model struct {
	// Hidden lists hidden layer widths; nil selects [64, 32].
	Hidden []int

	layers []*mlmath.Dense
}

// New returns an untrained model with default architecture.
func New() *Model { return &Model{} }

// Name implements ml.Model.
func (m *Model) Name() string { return "MLP" }

// Train implements ml.Model.
func (m *Model) Train(train, val *ml.Dataset, opts ml.TrainOptions) (*ml.TrainStats, error) {
	if err := ml.CheckDataset(train, true, false); err != nil {
		return nil, err
	}
	if train.Len() == 0 {
		return nil, fmt.Errorf("mlp: empty training set")
	}
	opts = opts.Defaults()
	start := time.Now()
	rng := rand.New(rand.NewSource(opts.Seed))

	hidden := m.Hidden
	if len(hidden) == 0 {
		hidden = []int{64, 32}
	}
	in := len(train.Examples[0].Flat)
	dims := append([]int{in}, hidden...)
	dims = append(dims, 1)
	m.layers = nil
	for i := 0; i+1 < len(dims); i++ {
		m.layers = append(m.layers, mlmath.NewDense(dims[i], dims[i+1], rng))
	}

	best := math.Inf(1)
	bestW := m.snapshot()
	sinceBest := 0
	stats := &ml.TrainStats{Stopped: "max-epochs"}
	idx := make([]int, train.Len())
	for i := range idx {
		idx[i] = i
	}
	for epoch := 1; epoch <= opts.MaxEpochs; epoch++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for b := 0; b < len(idx); b += opts.BatchSize {
			end := b + opts.BatchSize
			if end > len(idx) {
				end = len(idx)
			}
			for _, i := range idx[b:end] {
				m.backprop(train.Examples[i])
			}
			for _, l := range m.layers {
				l.Step(opts.LearningRate, end-b)
			}
		}
		stats.Epochs = epoch
		loss := ml.ValLoss(m, val)
		if loss < best-1e-6 {
			best = loss
			bestW = m.snapshot()
			sinceBest = 0
		} else if sinceBest++; sinceBest >= opts.Patience {
			stats.Stopped = "early"
			break
		}
	}
	m.restore(bestW)
	stats.TrainTime = time.Since(start)
	stats.FinalValLoss = best
	return stats, nil
}

// forward returns pre-activations and activations per layer.
func (m *Model) forward(x []float64) (pre, act [][]float64) {
	act = append(act, x)
	h := x
	for i, l := range m.layers {
		z := l.Forward(h)
		pre = append(pre, z)
		if i < len(m.layers)-1 {
			h = mlmath.ReLU(z)
		} else {
			h = z
		}
		act = append(act, h)
	}
	return pre, act
}

// backprop accumulates gradients for one example (MSE on log latency).
func (m *Model) backprop(e ml.Example) {
	pre, act := m.forward(e.Flat)
	out := act[len(act)-1][0]
	grad := []float64{2 * (out - e.LogLabel())}
	for i := len(m.layers) - 1; i >= 0; i-- {
		grad = m.layers[i].Backward(act[i], grad)
		if i > 0 {
			grad = mlmath.ReLUGrad(pre[i-1], grad)
		}
	}
}

// Predict implements ml.Model.
func (m *Model) Predict(e ml.Example) float64 {
	if m.layers == nil {
		return 1
	}
	_, act := m.forward(e.Flat)
	return math.Exp(act[len(act)-1][0])
}

// snapshot/restore implement early stopping's best-weights memory.
func (m *Model) snapshot() [][]float64 {
	var out [][]float64
	for _, l := range m.layers {
		flat := make([]float64, 0, l.ParamCount())
		for _, row := range l.W {
			flat = append(flat, row...)
		}
		flat = append(flat, l.B...)
		out = append(out, flat)
	}
	return out
}

func (m *Model) restore(snap [][]float64) {
	for li, l := range m.layers {
		flat := snap[li]
		k := 0
		for _, row := range l.W {
			copy(row, flat[k:k+len(row)])
			k += len(row)
		}
		copy(l.B, flat[k:])
	}
}

// mlpExport is the persisted form: layer dimensions plus the flattened
// weight blocks in snapshot order.
type mlpExport struct {
	Dims   []int       `json:"dims"` // in, hidden..., 1
	Blocks [][]float64 `json:"blocks"`
}

// MarshalModel implements ml.Persistable.
func (m *Model) MarshalModel() ([]byte, error) {
	if m.layers == nil {
		return nil, fmt.Errorf("mlp: model not trained")
	}
	e := mlpExport{Blocks: m.snapshot()}
	e.Dims = append(e.Dims, m.layers[0].In)
	for _, l := range m.layers {
		e.Dims = append(e.Dims, l.Out)
	}
	return json.Marshal(e)
}

// UnmarshalModel implements ml.Persistable.
func (m *Model) UnmarshalModel(data []byte) error {
	var e mlpExport
	if err := json.Unmarshal(data, &e); err != nil {
		return err
	}
	if len(e.Dims) < 2 || len(e.Blocks) != len(e.Dims)-1 {
		return fmt.Errorf("mlp: malformed export (%d dims, %d blocks)", len(e.Dims), len(e.Blocks))
	}
	rng := rand.New(rand.NewSource(1))
	m.layers = nil
	m.Hidden = e.Dims[1 : len(e.Dims)-1]
	for i := 0; i+1 < len(e.Dims); i++ {
		l := mlmath.NewDense(e.Dims[i], e.Dims[i+1], rng)
		if want := l.ParamCount(); len(e.Blocks[i]) != want {
			return fmt.Errorf("mlp: block %d has %d params, want %d", i, len(e.Blocks[i]), want)
		}
		m.layers = append(m.layers, l)
	}
	m.restore(e.Blocks)
	return nil
}
