// Package mltest provides shared corpus builders for the cost-model
// tests: labeled datasets over real workload-generator plans with a
// known synthetic cost surface, so model tests can assert learnability
// without running the full cluster simulator.
package mltest

import (
	"math"
	"math/rand"

	"pdspbench/internal/cluster"
	"pdspbench/internal/core"
	"pdspbench/internal/ml"
	"pdspbench/internal/ml/feature"
	"pdspbench/internal/tuple"
	"pdspbench/internal/workload"
)

// Plan builds one synthetic-structure plan with uniform parallelism.
func Plan(s workload.Structure, degree int, rate float64) *core.PQP {
	p := workload.Params{
		EventRate:  rate,
		TupleWidth: 4,
		FieldTypes: []tuple.Type{tuple.TypeInt, tuple.TypeDouble, tuple.TypeDouble, tuple.TypeString},
		Window:     core.WindowSpec{Type: core.WindowSliding, Policy: core.PolicyTime, LengthMs: 1000, SlideRatio: 0.5},
		AggFn:      core.AggSum, FilterFn: core.FilterLess, Selectivity: 0.5,
		Partition: core.PartitionRebalance, Distribution: "poisson",
	}
	plan, err := workload.Build(s, p)
	if err != nil {
		panic(err)
	}
	plan.SetUniformParallelism(degree)
	return plan
}

// SyntheticLatency is the known cost surface used as label: joins and
// parallelism interact non-linearly (U-shape in parallelism), echoing
// the real simulator's behaviour at much lower cost.
func SyntheticLatency(plan *core.PQP, noise float64, rng *rand.Rand) float64 {
	joins := float64(plan.CountKind(core.OpJoin))
	par := float64(plan.MaxParallelism())
	base := 0.5 + 0.8*joins
	queue := 2.0 * (1 + joins) / par      // improves with parallelism
	overhead := 0.004 * par * (1 + joins) // paradox term
	l := base + queue + overhead
	if noise > 0 {
		l *= math.Exp(rng.NormFloat64() * noise)
	}
	return l
}

// Corpus builds n labeled examples over random structures and a
// log-spaced parallelism grid on a homogeneous m510 cluster.
func Corpus(n int, seed int64, structures []workload.Structure) *ml.Dataset {
	if len(structures) == 0 {
		structures = workload.Structures
	}
	rng := rand.New(rand.NewSource(seed))
	cl := cluster.NewHomogeneous("ho", cluster.M510, 5)
	degrees := []int{1, 2, 4, 8, 16, 32, 64, 128, 256}
	ds := &ml.Dataset{}
	for i := 0; i < n; i++ {
		s := structures[rng.Intn(len(structures))]
		plan := Plan(s, degrees[rng.Intn(len(degrees))], 100_000)
		ds.Examples = append(ds.Examples, ml.Example{
			Flat:      feature.EncodeFlat(plan, cl),
			Graph:     feature.EncodeGraph(plan, cl),
			Latency:   SyntheticLatency(plan, 0.05, rng),
			Structure: plan.Structure,
		})
	}
	return ds
}
