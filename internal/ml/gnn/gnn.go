// Package gnn implements the graph-neural-network cost model of the
// paper's Exp-3 [after ZeroTune/COSTREAM]: the PQP is encoded as a DAG
// whose nodes are operators and whose edges are dataflow relationships;
// GraphSAGE-style message-passing layers (mean aggregation over upstream
// neighbours) produce node embeddings that are read out with
// jumping-knowledge pooling: every layer's embeddings (not just the
// last) are pooled by mean, max and sum, so deep plans whose dataflow
// paths exceed the receptive field still contribute bottleneck (max)
// and total-work (sum) signals, and an MLP head regresses log latency. The graph representation lets
// it "capture and utilize the intricate dependencies within the query
// structures", the property the paper credits for the GNN's consistently
// lowest q-error (O8).
package gnn

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"time"

	"pdspbench/internal/ml"
	"pdspbench/internal/ml/feature"
	"pdspbench/internal/ml/mlmath"
)

// sumPoolScale damps the sum pool (≈1/typical plan size).
const sumPoolScale = 0.125

// Model is the message-passing cost model.
type Model struct {
	// Hidden is the embedding width; zero selects 32.
	Hidden int
	// Layers is the number of message-passing rounds; zero selects 2.
	Layers int

	emb   *mlmath.Dense
	self  []*mlmath.Dense
	nb    []*mlmath.Dense
	head1 *mlmath.Dense
	head2 *mlmath.Dense
}

// New returns an untrained model with default architecture.
func New() *Model { return &Model{} }

// Name implements ml.Model.
func (m *Model) Name() string { return "GNN" }

func (m *Model) init(rng *rand.Rand) {
	h := m.Hidden
	if h <= 0 {
		h = 32
		m.Hidden = h
	}
	if m.Layers <= 0 {
		m.Layers = 2
	}
	m.emb = mlmath.NewDense(feature.NodeDim, h, rng)
	m.self = nil
	m.nb = nil
	for l := 0; l < m.Layers; l++ {
		m.self = append(m.self, mlmath.NewDense(h, h, rng))
		m.nb = append(m.nb, mlmath.NewDense(h, h, rng))
	}
	m.head1 = mlmath.NewDense(3*h*(m.Layers+1), 32, rng)
	m.head2 = mlmath.NewDense(32, 1, rng)
}

// trace stores a forward pass for backpropagation.
type trace struct {
	g *feature.Graph
	// pre0/h[0] are the embedding pre-activations/activations; h has
	// Layers+1 entries of per-node vectors.
	pre0 [][]float64
	h    [][][]float64
	msg  [][][]float64 // msg[l][i] = mean of h[l][In(i)]
	z    [][][]float64 // pre-activations of layer l+1
	pool []float64     // per-layer mean ‖ max ‖ sum, concatenated
	amax [][]int       // per-layer argmax node per dim for max-pool backprop
	hid1 []float64     // head hidden pre-activation
	out  float64
}

// forward runs the network on one graph.
func (m *Model) forward(g *feature.Graph) *trace {
	n := len(g.Nodes)
	t := &trace{g: g}
	t.pre0 = make([][]float64, n)
	h0 := make([][]float64, n)
	for i, x := range g.Nodes {
		t.pre0[i] = m.emb.Forward(x)
		h0[i] = mlmath.ReLU(t.pre0[i])
	}
	t.h = append(t.h, h0)
	for l := 0; l < m.Layers; l++ {
		prev := t.h[l]
		msgs := make([][]float64, n)
		zs := make([][]float64, n)
		next := make([][]float64, n)
		for i := 0; i < n; i++ {
			var rows [][]float64
			for _, j := range g.In[i] {
				rows = append(rows, prev[j])
			}
			msgs[i] = mlmath.Mean(rows, m.Hidden)
			z := m.self[l].Forward(prev[i])
			mlmath.Add(z, m.nb[l].Forward(msgs[i]))
			zs[i] = z
			next[i] = mlmath.ReLU(z)
		}
		t.msg = append(t.msg, msgs)
		t.z = append(t.z, zs)
		t.h = append(t.h, next)
	}
	t.amax = make([][]int, m.Layers+1)
	for l := 0; l <= m.Layers; l++ {
		layer := t.h[l]
		mean := mlmath.Mean(layer, m.Hidden)
		max := mlmath.MaxElem(layer, m.Hidden)
		// The sum pool carries total-work signal; scale it so deep plans
		// do not blow up the head's input magnitude and destabilize Adam.
		sum := mlmath.Vec(m.Hidden)
		for _, row := range layer {
			mlmath.Add(sum, row)
		}
		mlmath.Scale(sum, sumPoolScale)
		t.amax[l] = make([]int, m.Hidden)
		for d := 0; d < m.Hidden; d++ {
			best := 0
			for i := 1; i < n; i++ {
				if layer[i][d] > layer[best][d] {
					best = i
				}
			}
			t.amax[l][d] = best
		}
		t.pool = append(t.pool, mean...)
		t.pool = append(t.pool, max...)
		t.pool = append(t.pool, sum...)
	}
	t.hid1 = m.head1.Forward(t.pool)
	t.out = m.head2.Forward(mlmath.ReLU(t.hid1))[0]
	return t
}

// backprop accumulates gradients for one example.
func (m *Model) backprop(e ml.Example) {
	t := m.forward(e.Graph)
	n := len(t.g.Nodes)
	dout := []float64{2 * (t.out - e.LogLabel())}
	dhid1Act := m.head2.Backward(mlmath.ReLU(t.hid1), dout)
	dhid1 := mlmath.ReLUGrad(t.hid1, dhid1Act)
	dpool := m.head1.Backward(t.pool, dhid1)

	// poolGrad distributes layer l's slice of the pooled gradient onto
	// that layer's node embeddings.
	poolGrad := func(l int, dh [][]float64) {
		off := 3 * m.Hidden * l
		for d := 0; d < m.Hidden; d++ {
			gMean := dpool[off+d] / float64(n)
			gSum := dpool[off+2*m.Hidden+d] * sumPoolScale
			for i := 0; i < n; i++ {
				dh[i][d] += gMean + gSum
			}
			dh[t.amax[l][d]][d] += dpool[off+m.Hidden+d]
		}
	}
	dh := make([][]float64, n)
	for i := range dh {
		dh[i] = mlmath.Vec(m.Hidden)
	}
	poolGrad(m.Layers, dh)

	// Reverse through message-passing layers, folding in each layer's
	// jumping-knowledge pool gradient as we reach it.
	for l := m.Layers - 1; l >= 0; l-- {
		prev := t.h[l]
		dPrev := make([][]float64, n)
		for i := range dPrev {
			dPrev[i] = mlmath.Vec(m.Hidden)
		}
		for i := 0; i < n; i++ {
			dz := mlmath.ReLUGrad(t.z[l][i], dh[i])
			mlmath.Add(dPrev[i], m.self[l].Backward(prev[i], dz))
			dm := m.nb[l].Backward(t.msg[l][i], dz)
			if k := len(t.g.In[i]); k > 0 {
				mlmath.Scale(dm, 1/float64(k))
				for _, j := range t.g.In[i] {
					mlmath.Add(dPrev[j], dm)
				}
			}
		}
		poolGrad(l, dPrev)
		dh = dPrev
	}
	for i := 0; i < n; i++ {
		dp := mlmath.ReLUGrad(t.pre0[i], dh[i])
		m.emb.Backward(t.g.Nodes[i], dp)
	}
}

func (m *Model) layers() []*mlmath.Dense {
	out := []*mlmath.Dense{m.emb}
	out = append(out, m.self...)
	out = append(out, m.nb...)
	out = append(out, m.head1, m.head2)
	return out
}

// Train implements ml.Model.
func (m *Model) Train(train, val *ml.Dataset, opts ml.TrainOptions) (*ml.TrainStats, error) {
	if err := ml.CheckDataset(train, false, true); err != nil {
		return nil, err
	}
	if train.Len() == 0 {
		return nil, fmt.Errorf("gnn: empty training set")
	}
	opts = opts.Defaults()
	start := time.Now()
	rng := rand.New(rand.NewSource(opts.Seed))
	m.init(rng)

	best := math.Inf(1)
	bestW := m.snapshot()
	sinceBest := 0
	stats := &ml.TrainStats{Stopped: "max-epochs"}
	idx := make([]int, train.Len())
	for i := range idx {
		idx[i] = i
	}
	for epoch := 1; epoch <= opts.MaxEpochs; epoch++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for b := 0; b < len(idx); b += opts.BatchSize {
			end := b + opts.BatchSize
			if end > len(idx) {
				end = len(idx)
			}
			for _, i := range idx[b:end] {
				m.backprop(train.Examples[i])
			}
			for _, l := range m.layers() {
				l.Step(opts.LearningRate, end-b)
			}
		}
		stats.Epochs = epoch
		loss := ml.ValLoss(m, val)
		if loss < best-1e-6 {
			best = loss
			bestW = m.snapshot()
			sinceBest = 0
		} else if sinceBest++; sinceBest >= opts.Patience {
			stats.Stopped = "early"
			break
		}
	}
	m.restore(bestW)
	stats.TrainTime = time.Since(start)
	stats.FinalValLoss = best
	return stats, nil
}

// Predict implements ml.Model.
func (m *Model) Predict(e ml.Example) float64 {
	if m.emb == nil {
		return 1
	}
	return math.Exp(m.forward(e.Graph).out)
}

func (m *Model) snapshot() [][]float64 {
	var out [][]float64
	for _, l := range m.layers() {
		flat := make([]float64, 0, l.ParamCount())
		for _, row := range l.W {
			flat = append(flat, row...)
		}
		flat = append(flat, l.B...)
		out = append(out, flat)
	}
	return out
}

func (m *Model) restore(snap [][]float64) {
	for li, l := range m.layers() {
		flat := snap[li]
		k := 0
		for _, row := range l.W {
			copy(row, flat[k:k+len(row)])
			k += len(row)
		}
		copy(l.B, flat[k:])
	}
}

// gnnExport is the persisted form.
type gnnExport struct {
	Hidden int         `json:"hidden"`
	Layers int         `json:"layers"`
	Blocks [][]float64 `json:"blocks"` // snapshot order: emb, self..., nb..., head1, head2
}

// MarshalModel implements ml.Persistable.
func (m *Model) MarshalModel() ([]byte, error) {
	if m.emb == nil {
		return nil, fmt.Errorf("gnn: model not trained")
	}
	return json.Marshal(gnnExport{Hidden: m.Hidden, Layers: m.Layers, Blocks: m.snapshot()})
}

// UnmarshalModel implements ml.Persistable.
func (m *Model) UnmarshalModel(data []byte) error {
	var e gnnExport
	if err := json.Unmarshal(data, &e); err != nil {
		return err
	}
	if e.Hidden <= 0 || e.Layers <= 0 {
		return fmt.Errorf("gnn: malformed export (hidden=%d layers=%d)", e.Hidden, e.Layers)
	}
	m.Hidden = e.Hidden
	m.Layers = e.Layers
	m.init(rand.New(rand.NewSource(1)))
	layers := m.layers()
	if len(e.Blocks) != len(layers) {
		return fmt.Errorf("gnn: export has %d blocks, want %d", len(e.Blocks), len(layers))
	}
	for i, l := range layers {
		if len(e.Blocks[i]) != l.ParamCount() {
			return fmt.Errorf("gnn: block %d has %d params, want %d", i, len(e.Blocks[i]), l.ParamCount())
		}
	}
	m.restore(e.Blocks)
	return nil
}
