package gnn

import (
	"math"
	"math/rand"
	"testing"

	"pdspbench/internal/ml"
	"pdspbench/internal/ml/feature"
	"pdspbench/internal/ml/mltest"
	"pdspbench/internal/stats"
	"pdspbench/internal/workload"
)

// TestGradientCheck verifies the full GNN backward pass (pooling,
// message passing, embedding) against central finite differences on a
// real plan graph — the load-bearing correctness test of this package.
func TestGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := &Model{Hidden: 6, Layers: 2}
	m.init(rng)
	g := feature.EncodeGraph(mltest.Plan(workload.StructTwoWayJoin, 4, 100_000), nil)
	e := ml.Example{Graph: g, Latency: 2.5}

	loss := func() float64 {
		d := m.forward(g).out - e.LogLabel()
		return d * d
	}
	m.backprop(e)

	const eps = 1e-6
	check := func(name string, w []float64, grad []float64) {
		for i := range w {
			orig := w[i]
			w[i] = orig + eps
			up := loss()
			w[i] = orig - eps
			down := loss()
			w[i] = orig
			num := (up - down) / (2 * eps)
			if math.Abs(num-grad[i]) > 1e-4*(1+math.Abs(num)) {
				t.Errorf("%s[%d]: analytic %v vs numeric %v", name, i, grad[i], num)
			}
		}
	}
	layers := m.layers()
	names := []string{"emb", "self0", "self1", "nb0", "nb1", "head1", "head2"}
	for li, l := range layers {
		for o := range l.W {
			check(names[li]+".W", l.W[o], l.GW[o])
		}
		check(names[li]+".B", l.B, l.GB)
	}
}

func TestLearnsWorkloadCorpus(t *testing.T) {
	ds := mltest.Corpus(300, 12, nil)
	train, val, test := ds.Split(0.7, 0.15, 1)
	m := New()
	st, err := m.Train(train, val, ml.TrainOptions{MaxEpochs: 80, Patience: 10, LearningRate: 3e-3})
	if err != nil {
		t.Fatal(err)
	}
	q := stats.NewSampleFrom(ml.QErrors(m, test)).Median()
	if q > 1.6 {
		t.Errorf("median q-error %v (epochs=%d)", q, st.Epochs)
	}
}

func TestDistinguishesStructures(t *testing.T) {
	// Plans with different join counts must get different predictions
	// after training — the structural signal is the GNN's raison d'être.
	ds := mltest.Corpus(250, 13, nil)
	train, val, _ := ds.Split(0.8, 0.2, 1)
	m := New()
	if _, err := m.Train(train, val, ml.TrainOptions{MaxEpochs: 60, Patience: 8, LearningRate: 3e-3}); err != nil {
		t.Fatal(err)
	}
	linear := ml.Example{Graph: feature.EncodeGraph(mltest.Plan(workload.StructLinear, 8, 100_000), nil)}
	sixJoin := ml.Example{Graph: feature.EncodeGraph(mltest.Plan(workload.StructSixJoin, 8, 100_000), nil)}
	pl, pj := m.Predict(linear), m.Predict(sixJoin)
	if pj <= pl {
		t.Errorf("6-way join predicted %v ≤ linear %v; structure signal lost", pj, pl)
	}
}

func TestEmptyTrainingSetFails(t *testing.T) {
	if _, err := New().Train(&ml.Dataset{}, &ml.Dataset{}, ml.TrainOptions{}); err == nil {
		t.Error("training on empty set should fail")
	}
}

func TestUntrainedPredictIsFinite(t *testing.T) {
	g := feature.EncodeGraph(mltest.Plan(workload.StructLinear, 1, 1000), nil)
	p := New().Predict(ml.Example{Graph: g})
	if math.IsNaN(p) || math.IsInf(p, 0) || p <= 0 {
		t.Errorf("untrained Predict = %v", p)
	}
}

func TestRejectsDatasetWithoutGraphs(t *testing.T) {
	ds := &ml.Dataset{Examples: []ml.Example{{Flat: []float64{1}, Latency: 1}}}
	if _, err := New().Train(ds, ds, ml.TrainOptions{}); err == nil {
		t.Error("GNN accepted dataset without graph encodings")
	}
}
