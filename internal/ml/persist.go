package ml

import (
	"encoding/json"
	"fmt"
)

// Persistable is implemented by models whose trained parameters can be
// exported and re-imported — the train-once / infer-later workflow: a
// corpus is expensive to label (every query is a benchmark run), so
// trained cost models are kept in the run store next to the corpus.
type Persistable interface {
	Model
	// MarshalModel exports the trained parameters.
	MarshalModel() ([]byte, error)
	// UnmarshalModel restores parameters exported by MarshalModel on a
	// model of the same architecture.
	UnmarshalModel(data []byte) error
}

// envelope wraps an export with its architecture name so Load can demux.
type envelope struct {
	Model  string          `json:"model"`
	Params json.RawMessage `json:"params"`
}

// SaveModel wraps a model's export with its architecture tag.
func SaveModel(m Persistable) ([]byte, error) {
	params, err := m.MarshalModel()
	if err != nil {
		return nil, err
	}
	return json.Marshal(envelope{Model: m.Name(), Params: params})
}

// LoadModel restores a SaveModel export into the matching fresh model
// from the factory map (keyed by architecture name).
func LoadModel(data []byte, factories map[string]func() Persistable) (Persistable, error) {
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("ml: decode model envelope: %w", err)
	}
	f, ok := factories[env.Model]
	if !ok {
		return nil, fmt.Errorf("ml: no factory for model %q", env.Model)
	}
	m := f()
	if err := m.UnmarshalModel(env.Params); err != nil {
		return nil, fmt.Errorf("ml: restore %s: %w", env.Model, err)
	}
	return m, nil
}
