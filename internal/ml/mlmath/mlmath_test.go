package mlmath

import (
	"math"
	"math/rand"
	"testing"
)

func TestDotAddScale(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Errorf("Dot = %v, want 32", got)
	}
	v := []float64{1, 2}
	Add(v, []float64{10, 20})
	if v[0] != 11 || v[1] != 22 {
		t.Errorf("Add = %v", v)
	}
	Scale(v, 2)
	if v[0] != 22 || v[1] != 44 {
		t.Errorf("Scale = %v", v)
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Dot accepted mismatched lengths")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestMeanAndMaxElem(t *testing.T) {
	rows := [][]float64{{1, 5}, {3, 1}}
	m := Mean(rows, 2)
	if m[0] != 2 || m[1] != 3 {
		t.Errorf("Mean = %v", m)
	}
	mx := MaxElem(rows, 2)
	if mx[0] != 3 || mx[1] != 5 {
		t.Errorf("MaxElem = %v", mx)
	}
	if z := Mean(nil, 3); z[0] != 0 || len(z) != 3 {
		t.Errorf("Mean(empty) = %v", z)
	}
}

func TestReLUAndGrad(t *testing.T) {
	x := []float64{-1, 0, 2}
	y := ReLU(x)
	if y[0] != 0 || y[1] != 0 || y[2] != 2 {
		t.Errorf("ReLU = %v", y)
	}
	g := ReLUGrad(x, []float64{5, 5, 5})
	if g[0] != 0 || g[1] != 0 || g[2] != 5 {
		t.Errorf("ReLUGrad = %v", g)
	}
}

// TestDenseGradientCheck verifies analytic gradients against central
// finite differences — the load-bearing correctness property for every
// model built on Dense.
func TestDenseGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := NewDense(4, 3, rng)
	x := []float64{0.5, -1, 2, 0.3}
	target := []float64{1, -2, 0.5}

	loss := func() float64 {
		y := d.Forward(x)
		var s float64
		for i := range y {
			diff := y[i] - target[i]
			s += diff * diff
		}
		return s
	}

	// Analytic gradients.
	y := d.Forward(x)
	gradOut := make([]float64, 3)
	for i := range y {
		gradOut[i] = 2 * (y[i] - target[i])
	}
	gradIn := d.Backward(x, gradOut)

	const eps = 1e-6
	// Check weight gradients.
	for o := 0; o < 3; o++ {
		for i := 0; i < 4; i++ {
			orig := d.W[o][i]
			d.W[o][i] = orig + eps
			up := loss()
			d.W[o][i] = orig - eps
			down := loss()
			d.W[o][i] = orig
			num := (up - down) / (2 * eps)
			if math.Abs(num-d.GW[o][i]) > 1e-4*(1+math.Abs(num)) {
				t.Errorf("dW[%d][%d]: analytic %v vs numeric %v", o, i, d.GW[o][i], num)
			}
		}
	}
	// Check input gradients.
	for i := 0; i < 4; i++ {
		orig := x[i]
		x[i] = orig + eps
		up := loss()
		x[i] = orig - eps
		down := loss()
		x[i] = orig
		num := (up - down) / (2 * eps)
		if math.Abs(num-gradIn[i]) > 1e-4*(1+math.Abs(num)) {
			t.Errorf("dx[%d]: analytic %v vs numeric %v", i, gradIn[i], num)
		}
	}
}

func TestDenseStepClearsGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := NewDense(2, 2, rng)
	d.Backward([]float64{1, 1}, []float64{1, 1})
	d.Step(0.01, 1)
	for o := range d.GW {
		for i := range d.GW[o] {
			if d.GW[o][i] != 0 {
				t.Fatal("Step did not clear weight gradients")
			}
		}
	}
	for _, g := range d.GB {
		if g != 0 {
			t.Fatal("Step did not clear bias gradients")
		}
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// Minimize (x-3)² with Adam; must converge near 3.
	a := NewAdam(1)
	x := 0.0
	for i := 0; i < 3000; i++ {
		g := 2 * (x - 3)
		x -= a.Update(0, g, 0.05)
	}
	if math.Abs(x-3) > 0.05 {
		t.Errorf("Adam converged to %v, want ≈3", x)
	}
}

func TestDenseLearnsLinearMap(t *testing.T) {
	// A single Dense layer trained with Adam must fit y = 2x₀ − x₁ + 1.
	rng := rand.New(rand.NewSource(3))
	d := NewDense(2, 1, rng)
	for epoch := 0; epoch < 2000; epoch++ {
		x := []float64{rng.Float64()*4 - 2, rng.Float64()*4 - 2}
		want := 2*x[0] - x[1] + 1
		y := d.Forward(x)
		d.Backward(x, []float64{2 * (y[0] - want)})
		d.Step(0.02, 1)
	}
	x := []float64{1, 1}
	if got := d.Forward(x)[0]; math.Abs(got-2) > 0.1 {
		t.Errorf("learned f(1,1) = %v, want 2", got)
	}
	if d.ParamCount() != 3 {
		t.Errorf("ParamCount = %d, want 3", d.ParamCount())
	}
}
