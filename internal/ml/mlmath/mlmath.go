// Package mlmath provides the small dense-linear-algebra and optimizer
// toolkit shared by the learned cost models (MLP and GNN): vectors,
// dense layers with manual backpropagation, ReLU, and Adam.
package mlmath

import (
	"math"
	"math/rand"
)

// Vec allocates a zero vector.
func Vec(n int) []float64 { return make([]float64, n) }

// Dot returns the inner product; it panics on mismatched lengths (a
// wiring bug, not a data condition).
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("mlmath: Dot length mismatch")
	}
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Add accumulates src into dst element-wise.
func Add(dst, src []float64) {
	for i := range dst {
		dst[i] += src[i]
	}
}

// Scale multiplies the vector in place.
func Scale(v []float64, s float64) {
	for i := range v {
		v[i] *= s
	}
}

// Mean averages rows of equal-length vectors; an empty input yields a
// zero vector of dimension dim.
func Mean(rows [][]float64, dim int) []float64 {
	out := Vec(dim)
	if len(rows) == 0 {
		return out
	}
	for _, r := range rows {
		Add(out, r)
	}
	Scale(out, 1/float64(len(rows)))
	return out
}

// MaxElem takes the element-wise max of rows; empty input yields zeros.
func MaxElem(rows [][]float64, dim int) []float64 {
	out := Vec(dim)
	if len(rows) == 0 {
		return out
	}
	copy(out, rows[0])
	for _, r := range rows[1:] {
		for i, v := range r {
			if v > out[i] {
				out[i] = v
			}
		}
	}
	return out
}

// ReLU applies max(0, x) out of place.
func ReLU(x []float64) []float64 {
	out := Vec(len(x))
	for i, v := range x {
		if v > 0 {
			out[i] = v
		}
	}
	return out
}

// ReLUGrad masks the upstream gradient by the activation's sign.
func ReLUGrad(preact, grad []float64) []float64 {
	out := Vec(len(grad))
	for i := range grad {
		if preact[i] > 0 {
			out[i] = grad[i]
		}
	}
	return out
}

// Dense is a fully connected layer y = W·x + b with gradient buffers.
type Dense struct {
	In, Out int
	W       [][]float64 // Out × In
	B       []float64
	GW      [][]float64
	GB      []float64
	optW    *Adam
	optB    *Adam
}

// NewDense initializes with He-scaled weights, appropriate for the ReLU
// networks the cost models use.
func NewDense(in, out int, rng *rand.Rand) *Dense {
	d := &Dense{In: in, Out: out, B: Vec(out), GB: Vec(out)}
	scale := math.Sqrt(2.0 / float64(in))
	d.W = make([][]float64, out)
	d.GW = make([][]float64, out)
	for o := 0; o < out; o++ {
		d.W[o] = Vec(in)
		d.GW[o] = Vec(in)
		for i := range d.W[o] {
			d.W[o][i] = rng.NormFloat64() * scale
		}
	}
	d.optW = NewAdam(out * in)
	d.optB = NewAdam(out)
	return d
}

// Forward computes W·x + b.
func (d *Dense) Forward(x []float64) []float64 {
	out := Vec(d.Out)
	for o := 0; o < d.Out; o++ {
		out[o] = Dot(d.W[o], x) + d.B[o]
	}
	return out
}

// Backward accumulates parameter gradients for the pair (x, gradOut) and
// returns the gradient with respect to x.
func (d *Dense) Backward(x, gradOut []float64) []float64 {
	gradIn := Vec(d.In)
	for o := 0; o < d.Out; o++ {
		g := gradOut[o]
		if g == 0 {
			continue
		}
		d.GB[o] += g
		wo, gwo := d.W[o], d.GW[o]
		for i := range wo {
			gwo[i] += g * x[i]
			gradIn[i] += g * wo[i]
		}
	}
	return gradIn
}

// Step applies one Adam update scaled by 1/batch and clears gradients.
func (d *Dense) Step(lr float64, batch int) {
	inv := 1.0
	if batch > 0 {
		inv = 1 / float64(batch)
	}
	k := 0
	for o := 0; o < d.Out; o++ {
		for i := 0; i < d.In; i++ {
			d.W[o][i] -= d.optW.Update(k, d.GW[o][i]*inv, lr)
			d.GW[o][i] = 0
			k++
		}
	}
	for o := 0; o < d.Out; o++ {
		d.B[o] -= d.optB.Update(o, d.GB[o]*inv, lr)
		d.GB[o] = 0
	}
}

// ParamCount reports the number of trainable parameters.
func (d *Dense) ParamCount() int { return d.Out*d.In + d.Out }

// Adam is the Adam optimizer state for a flat parameter block.
type Adam struct {
	m, v []float64
	t    int
	b1   float64
	b2   float64
	eps  float64
}

// NewAdam allocates optimizer state for n parameters.
func NewAdam(n int) *Adam {
	return &Adam{m: Vec(n), v: Vec(n), b1: 0.9, b2: 0.999, eps: 1e-8}
}

// Tick advances the shared timestep; call once per optimizer step before
// Update calls.
func (a *Adam) Tick() { a.t++ }

// Update returns the parameter delta for gradient g at index i. The
// timestep is advanced lazily on index 0 so Dense.Step needs no extra
// bookkeeping.
func (a *Adam) Update(i int, g, lr float64) float64 {
	if i == 0 {
		a.t++
	}
	a.m[i] = a.b1*a.m[i] + (1-a.b1)*g
	a.v[i] = a.b2*a.v[i] + (1-a.b2)*g*g
	mh := a.m[i] / (1 - math.Pow(a.b1, float64(a.t)))
	vh := a.v[i] / (1 - math.Pow(a.b2, float64(a.t)))
	return lr * mh / (math.Sqrt(vh) + a.eps)
}
