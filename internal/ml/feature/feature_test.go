package feature

import (
	"testing"

	"pdspbench/internal/cluster"
	"pdspbench/internal/core"
	"pdspbench/internal/tuple"
	"pdspbench/internal/workload"
)

func testPlan(t *testing.T, s workload.Structure, degree int) *core.PQP {
	t.Helper()
	p := workload.Params{
		EventRate:  100_000,
		TupleWidth: 4,
		FieldTypes: []tuple.Type{tuple.TypeInt, tuple.TypeDouble, tuple.TypeDouble, tuple.TypeString},
		Window:     core.WindowSpec{Type: core.WindowSliding, Policy: core.PolicyTime, LengthMs: 1000, SlideRatio: 0.5},
		AggFn:      core.AggSum, FilterFn: core.FilterLess, Selectivity: 0.5,
		Partition: core.PartitionRebalance, Distribution: "poisson",
	}
	plan, err := workload.Build(s, p)
	if err != nil {
		t.Fatal(err)
	}
	plan.SetUniformParallelism(degree)
	return plan
}

func TestEncodeGraphShape(t *testing.T) {
	plan := testPlan(t, workload.StructTwoWayJoin, 4)
	cl := cluster.NewHomogeneous("ho", cluster.M510, 5)
	g := EncodeGraph(plan, cl)
	if len(g.Nodes) != len(plan.Operators) {
		t.Fatalf("nodes = %d, want %d", len(g.Nodes), len(plan.Operators))
	}
	for i, n := range g.Nodes {
		if len(n) != NodeDim {
			t.Fatalf("node %d has dim %d, want %d", i, len(n), NodeDim)
		}
	}
	// Edge count must match the plan.
	var edges int
	for _, in := range g.In {
		edges += len(in)
	}
	if edges != len(plan.Edges) {
		t.Errorf("graph has %d edges, plan %d", edges, len(plan.Edges))
	}
	if len(g.Order) != len(g.Nodes) {
		t.Errorf("topological order covers %d of %d nodes", len(g.Order), len(g.Nodes))
	}
}

func TestOneHotKindSet(t *testing.T) {
	plan := testPlan(t, workload.StructLinear, 2)
	g := EncodeGraph(plan, nil)
	for i, op := range plan.Operators {
		for k := 0; k < core.NumOpKinds; k++ {
			want := 0.0
			if k == int(op.Kind) {
				want = 1
			}
			if g.Nodes[i][k] != want {
				t.Errorf("node %s one-hot[%d] = %v, want %v", op.ID, k, g.Nodes[i][k], want)
			}
		}
	}
}

func TestParallelismChangesFeatures(t *testing.T) {
	a := EncodeFlat(testPlan(t, workload.StructThreeJoin, 2), nil)
	b := EncodeFlat(testPlan(t, workload.StructThreeJoin, 64), nil)
	if len(a) != FlatDim || len(b) != FlatDim {
		t.Fatalf("flat dims %d/%d, want %d", len(a), len(b), FlatDim)
	}
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("parallelism 2 and 64 encode identically; cost models cannot learn parallelism effects")
	}
}

func TestClusterChangesFeatures(t *testing.T) {
	plan := testPlan(t, workload.StructLinear, 4)
	ho := cluster.NewHomogeneous("ho", cluster.M510, 5)
	he := cluster.NewHeterogeneous("he", []cluster.NodeType{cluster.C6525_25G, cluster.C6320}, 5)
	a, b := EncodeFlat(plan, ho), EncodeFlat(plan, he)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different clusters encode identically; hardware diversity invisible to models")
	}
}

func TestStructuresDifferInQueryLevelFeatures(t *testing.T) {
	lin := EncodeFlat(testPlan(t, workload.StructLinear, 4), nil)
	join := EncodeFlat(testPlan(t, workload.StructFourJoin, 4), nil)
	// Join count feature (FlatDim-6) must differ.
	if lin[FlatDim-6] == join[FlatDim-6] {
		t.Errorf("join-count feature identical: %v vs %v", lin[FlatDim-6], join[FlatDim-6])
	}
}

func TestGraphOrderIsTopological(t *testing.T) {
	plan := testPlan(t, workload.StructThreeJoin, 2)
	g := EncodeGraph(plan, nil)
	pos := make(map[int]int, len(g.Order))
	for p, n := range g.Order {
		pos[n] = p
	}
	for to, ins := range g.In {
		for _, from := range ins {
			if pos[from] >= pos[to] {
				t.Fatalf("order violates edge %d→%d", from, to)
			}
		}
	}
}
