// Package feature encodes parallel query plans for the learned cost
// models. Two encodings are produced from the same plan, mirroring the
// paper's Exp-3 setup:
//
//   - a flat fixed-width vector (per-operator features aggregated by
//     mean and max plus query-level features) for linear regression,
//     MLP and random forest — these architectures cannot consume
//     structure, which is precisely the handicap the paper observes;
//   - a graph encoding (per-node feature vectors plus the DAG edges) for
//     the GNN, which "encodes PQP as a DAG ... treating different
//     operators within PQP as nodes, and the relationships between them
//     as edges".
package feature

import (
	"math"

	"pdspbench/internal/cluster"
	"pdspbench/internal/core"
)

// NodeDim is the per-operator feature dimension.
const NodeDim = core.NumOpKinds + 11

// nodeFeatures encodes one operator. Continuous features are log-scaled
// where they span orders of magnitude.
func nodeFeatures(plan *core.PQP, op *core.Operator, cl *cluster.Cluster, rates map[string]float64) []float64 {
	f := make([]float64, NodeDim)
	f[int(op.Kind)] = 1 // one-hot operator kind
	i := core.NumOpKinds
	f[i+0] = math.Log2(float64(op.Parallelism) + 1)
	f[i+1] = op.Selectivity()
	f[i+2] = math.Log2(op.CostFactor() + 1)
	f[i+3] = math.Log10(rates[op.ID] + 1) // propagated input rate
	f[i+4] = float64(op.OutWidth) / 15    // tuple width, Table 3 scale
	if w := op.WindowSpecOf(); w != nil {
		f[i+5] = math.Log10(w.Length() + 1)
		if w.Type == core.WindowSliding {
			f[i+6] = w.SlideRatio
		} else {
			f[i+6] = 1 // tumbling slides by its full length
		}
		if w.Policy == core.PolicyTime {
			f[i+7] = 1
		}
	}
	if op.UDO != nil {
		f[i+8] = op.UDO.StateFactor
	}
	// Hardware context: the paper's heterogeneous placements make the
	// hosting cluster's speed range part of the cost surface.
	if cl != nil && len(cl.Nodes) > 0 {
		f[i+9] = (cl.MinNodeSpeed() + cl.MaxNodeSpeed()) / 2
		f[i+10] = math.Log2(float64(cl.TotalCores()) + 1)
	}
	return f
}

// Graph is the GNN input: node feature rows and incoming-edge adjacency.
type Graph struct {
	Nodes [][]float64
	// In[i] lists node indexes with an edge into node i (dataflow
	// upstream neighbours).
	In [][]int
	// Order holds node indexes in topological order, sources first.
	Order []int
}

// EncodeGraph builds the DAG encoding of a plan deployed on a cluster.
func EncodeGraph(plan *core.PQP, cl *cluster.Cluster) *Graph {
	rates := plan.InputRates()
	idx := make(map[string]int, len(plan.Operators))
	g := &Graph{}
	for i, op := range plan.Operators {
		idx[op.ID] = i
		g.Nodes = append(g.Nodes, nodeFeatures(plan, op, cl, rates))
	}
	g.In = make([][]int, len(plan.Operators))
	for _, e := range plan.Edges {
		g.In[idx[e.To]] = append(g.In[idx[e.To]], idx[e.From])
	}
	if order, err := plan.TopoOrder(); err == nil {
		for _, id := range order {
			g.Order = append(g.Order, idx[id])
		}
	} else {
		for i := range plan.Operators {
			g.Order = append(g.Order, i)
		}
	}
	return g
}

// FlatDim is the flat-encoding dimension: mean and max of node features
// plus query-level scalars.
const FlatDim = 2*NodeDim + 7

// EncodeFlat aggregates per-operator features into a fixed-width vector.
func EncodeFlat(plan *core.PQP, cl *cluster.Cluster) []float64 {
	g := EncodeGraph(plan, cl)
	out := make([]float64, 0, FlatDim)
	out = append(out, meanRows(g.Nodes, NodeDim)...)
	out = append(out, maxRows(g.Nodes, NodeDim)...)

	var totalPar, maxPar, rate float64
	for _, op := range plan.Operators {
		totalPar += float64(op.Parallelism)
		if float64(op.Parallelism) > maxPar {
			maxPar = float64(op.Parallelism)
		}
		if op.Kind == core.OpSource {
			rate += op.Source.EventRate
		}
	}
	out = append(out,
		float64(len(plan.Operators))/16,
		float64(plan.CountKind(core.OpJoin)),
		float64(plan.CountKind(core.OpFilter)),
		float64(plan.CountKind(core.OpUDO)),
		math.Log2(totalPar+1),
		math.Log2(maxPar+1),
		math.Log10(rate+1),
	)
	return out
}

func meanRows(rows [][]float64, dim int) []float64 {
	out := make([]float64, dim)
	if len(rows) == 0 {
		return out
	}
	for _, r := range rows {
		for i, v := range r {
			out[i] += v
		}
	}
	for i := range out {
		out[i] /= float64(len(rows))
	}
	return out
}

func maxRows(rows [][]float64, dim int) []float64 {
	out := make([]float64, dim)
	if len(rows) == 0 {
		return out
	}
	copy(out, rows[0])
	for _, r := range rows[1:] {
		for i, v := range r {
			if v > out[i] {
				out[i] = v
			}
		}
	}
	return out
}
