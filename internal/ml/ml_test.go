package ml_test

import (
	"math"
	"testing"

	"pdspbench/internal/ml"
	"pdspbench/internal/ml/mltest"
)

func TestSplitProportionsAndDisjointness(t *testing.T) {
	ds := mltest.Corpus(100, 1, nil)
	train, val, test := ds.Split(0.7, 0.15, 7)
	if train.Len() != 70 || val.Len() != 15 || test.Len() != 15 {
		t.Fatalf("split sizes %d/%d/%d, want 70/15/15", train.Len(), val.Len(), test.Len())
	}
	// Same seed → same split.
	train2, _, _ := ds.Split(0.7, 0.15, 7)
	for i := range train.Examples {
		if train.Examples[i].Latency != train2.Examples[i].Latency {
			t.Fatal("split not deterministic for equal seeds")
		}
	}
}

func TestSubsetClamps(t *testing.T) {
	ds := mltest.Corpus(10, 2, nil)
	if got := ds.Subset(5).Len(); got != 5 {
		t.Errorf("Subset(5) = %d", got)
	}
	if got := ds.Subset(99).Len(); got != 10 {
		t.Errorf("Subset(99) = %d, want clamp to 10", got)
	}
}

func TestLogLabelFloorsTinyLatencies(t *testing.T) {
	e := ml.Example{Latency: 0}
	if l := e.LogLabel(); math.IsInf(l, 0) || math.IsNaN(l) {
		t.Errorf("LogLabel(0) = %v, want finite floor", l)
	}
}

// constModel predicts a fixed latency.
type constModel struct{ v float64 }

func (c constModel) Name() string { return "const" }
func (c constModel) Train(_, _ *ml.Dataset, _ ml.TrainOptions) (*ml.TrainStats, error) {
	return &ml.TrainStats{}, nil
}
func (c constModel) Predict(ml.Example) float64 { return c.v }

func TestQErrorsAgainstConstModel(t *testing.T) {
	ds := &ml.Dataset{Examples: []ml.Example{
		{Latency: 2}, {Latency: 8}, {Latency: 4},
	}}
	qs := ml.QErrors(constModel{v: 4}, ds)
	want := []float64{2, 2, 1}
	for i := range want {
		if math.Abs(qs[i]-want[i]) > 1e-9 {
			t.Errorf("QErrors[%d] = %v, want %v", i, qs[i], want[i])
		}
	}
}

func TestValLossZeroForPerfectModel(t *testing.T) {
	ds := &ml.Dataset{Examples: []ml.Example{{Latency: 3}}}
	if got := ml.ValLoss(constModel{v: 3}, ds); got > 1e-12 {
		t.Errorf("ValLoss of perfect model = %v", got)
	}
	if got := ml.ValLoss(constModel{v: 3}, &ml.Dataset{}); got != 0 {
		t.Errorf("ValLoss on empty set = %v", got)
	}
}

func TestCheckDataset(t *testing.T) {
	ds := mltest.Corpus(5, 3, nil)
	if err := ml.CheckDataset(ds, true, true); err != nil {
		t.Errorf("complete dataset rejected: %v", err)
	}
	broken := &ml.Dataset{Examples: []ml.Example{{Latency: 1}}}
	if err := ml.CheckDataset(broken, true, false); err == nil {
		t.Error("missing flat encoding accepted")
	}
	if err := ml.CheckDataset(broken, false, true); err == nil {
		t.Error("missing graph encoding accepted")
	}
}

func TestTrainOptionsDefaults(t *testing.T) {
	o := ml.TrainOptions{}.Defaults()
	if o.MaxEpochs <= 0 || o.Patience <= 0 || o.LearningRate <= 0 || o.BatchSize <= 0 || o.Seed == 0 {
		t.Errorf("Defaults left zero fields: %+v", o)
	}
	o2 := ml.TrainOptions{MaxEpochs: 3, Patience: 1, LearningRate: 0.1, BatchSize: 4, Seed: 9}.Defaults()
	if o2.MaxEpochs != 3 || o2.Patience != 1 || o2.LearningRate != 0.1 || o2.BatchSize != 4 || o2.Seed != 9 {
		t.Errorf("Defaults overwrote explicit values: %+v", o2)
	}
}
