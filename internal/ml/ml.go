// Package ml defines the common contract of PDSP-Bench's learned cost
// models: a labeled dataset of (encoded PQP, measured latency) examples,
// a Model interface with uniform training options (so the ML Manager can
// compare architectures "fairly" on identical corpora, splits and early
// stopping, per the paper's C3), and per-model training statistics.
package ml

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"pdspbench/internal/ml/feature"
)

// Example is one labeled workload: both encodings of the same plan plus
// its measured median end-to-end latency in seconds.
type Example struct {
	Flat    []float64
	Graph   *feature.Graph
	Latency float64
	// Structure tags the synthetic query structure (or application code)
	// for per-structure q-error reporting (Figure 5's x-axis).
	Structure string
}

// LogLabel is the regression target: log(latency). Costs span orders of
// magnitude, and the q-error metric is multiplicative, so all models
// regress in log space.
func (e Example) LogLabel() float64 {
	l := e.Latency
	if l < 1e-9 {
		l = 1e-9
	}
	return math.Log(l)
}

// Dataset is an ordered example collection.
type Dataset struct {
	Examples []Example
}

// Len returns the number of examples.
func (d *Dataset) Len() int { return len(d.Examples) }

// Split shuffles with the seed and cuts into train/validation/test
// portions. Fractions must sum to at most 1; the remainder joins test.
func (d *Dataset) Split(trainFrac, valFrac float64, seed int64) (train, val, test *Dataset) {
	idx := rand.New(rand.NewSource(seed)).Perm(len(d.Examples))
	nTrain := int(trainFrac * float64(len(idx)))
	nVal := int(valFrac * float64(len(idx)))
	pick := func(ids []int) *Dataset {
		out := &Dataset{Examples: make([]Example, 0, len(ids))}
		for _, i := range ids {
			out.Examples = append(out.Examples, d.Examples[i])
		}
		return out
	}
	return pick(idx[:nTrain]), pick(idx[nTrain : nTrain+nVal]), pick(idx[nTrain+nVal:])
}

// Subset returns the first n examples (callers shuffle via Split first);
// n beyond the dataset length is clamped.
func (d *Dataset) Subset(n int) *Dataset {
	if n > len(d.Examples) {
		n = len(d.Examples)
	}
	return &Dataset{Examples: d.Examples[:n]}
}

// TrainOptions are applied uniformly to every model under comparison.
type TrainOptions struct {
	MaxEpochs int
	// Patience is the early-stopping window: training halts when the
	// validation loss has not improved for this many consecutive epochs
	// (the paper: "halting training if it did not improve for N
	// consecutive epochs ... uniformly applied across all models").
	Patience     int
	LearningRate float64
	BatchSize    int
	Seed         int64
}

// Defaults fills unset options.
func (o TrainOptions) Defaults() TrainOptions {
	if o.MaxEpochs <= 0 {
		o.MaxEpochs = 200
	}
	if o.Patience <= 0 {
		o.Patience = 10
	}
	if o.LearningRate <= 0 {
		o.LearningRate = 1e-3
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 16
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// TrainStats reports training effort — the paper's training-efficiency
// metrics (Exp-3: "training overhead (queries and time)").
type TrainStats struct {
	Epochs       int
	TrainTime    time.Duration
	FinalValLoss float64
	Stopped      string // "early" or "max-epochs"
}

// Model is one learned cost model architecture.
type Model interface {
	Name() string
	// Train fits on train, early-stopping on val.
	Train(train, val *Dataset, opts TrainOptions) (*TrainStats, error)
	// Predict returns the predicted latency in seconds.
	Predict(e Example) float64
}

// ValLoss computes mean squared error in log space over a dataset — the
// uniform early-stopping criterion.
func ValLoss(m Model, ds *Dataset) float64 {
	if ds.Len() == 0 {
		return 0
	}
	var sum float64
	for _, e := range ds.Examples {
		p := m.Predict(e)
		if p < 1e-9 {
			p = 1e-9
		}
		d := math.Log(p) - e.LogLabel()
		sum += d * d
	}
	return sum / float64(ds.Len())
}

// QErrors evaluates a trained model over a dataset, returning per-example
// q-errors q(c, c') = max(c/c', c'/c).
func QErrors(m Model, ds *Dataset) []float64 {
	out := make([]float64, ds.Len())
	for i, e := range ds.Examples {
		truth, pred := e.Latency, m.Predict(e)
		if truth < 1e-9 {
			truth = 1e-9
		}
		if pred < 1e-9 {
			pred = 1e-9
		}
		if truth > pred {
			out[i] = truth / pred
		} else {
			out[i] = pred / truth
		}
	}
	return out
}

// CheckDataset validates that examples carry the encodings a model
// family needs.
func CheckDataset(ds *Dataset, needFlat, needGraph bool) error {
	for i, e := range ds.Examples {
		if needFlat && len(e.Flat) == 0 {
			return fmt.Errorf("ml: example %d missing flat encoding", i)
		}
		if needGraph && e.Graph == nil {
			return fmt.Errorf("ml: example %d missing graph encoding", i)
		}
	}
	return nil
}
