// Package linreg implements the linear-regression cost model of the
// paper's Exp-3 [Ganapathi et al., ICDE'09]: ridge regression on the
// flat PQP encoding, fit in closed form by solving the regularized
// normal equations. It is the simplest of the four compared
// architectures — fast to train, but unable to capture the non-linear
// parallelism effects the paper highlights (O2, O4), which is why its
// q-error trails the GNN's.
package linreg

import (
	"encoding/json"
	"fmt"
	"math"
	"time"

	"pdspbench/internal/ml"
)

// Model is a ridge-regularized linear cost model over log latency.
type Model struct {
	// Lambda is the ridge coefficient; zero selects 1e-3.
	Lambda float64

	w []float64 // len = features + 1 (bias last)
}

// New returns an untrained model.
func New() *Model { return &Model{} }

// Name implements ml.Model.
func (m *Model) Name() string { return "LR" }

// Train implements ml.Model: it solves (XᵀX + λI) w = Xᵀy. Early
// stopping does not apply to a closed-form fit; stats report one epoch.
func (m *Model) Train(train, val *ml.Dataset, opts ml.TrainOptions) (*ml.TrainStats, error) {
	if err := ml.CheckDataset(train, true, false); err != nil {
		return nil, err
	}
	if train.Len() == 0 {
		return nil, fmt.Errorf("linreg: empty training set")
	}
	start := time.Now()
	lambda := m.Lambda
	if lambda <= 0 {
		lambda = 1e-3
	}
	d := len(train.Examples[0].Flat) + 1 // +1 bias
	// Accumulate XᵀX and Xᵀy.
	xtx := make([][]float64, d)
	for i := range xtx {
		xtx[i] = make([]float64, d)
	}
	xty := make([]float64, d)
	row := make([]float64, d)
	for _, e := range train.Examples {
		copy(row, e.Flat)
		row[d-1] = 1
		y := e.LogLabel()
		for i := 0; i < d; i++ {
			if row[i] == 0 {
				continue
			}
			xty[i] += row[i] * y
			for j := 0; j < d; j++ {
				xtx[i][j] += row[i] * row[j]
			}
		}
	}
	for i := 0; i < d; i++ {
		xtx[i][i] += lambda
	}
	w, err := solve(xtx, xty)
	if err != nil {
		return nil, err
	}
	m.w = w
	stats := &ml.TrainStats{
		Epochs:    1,
		TrainTime: time.Since(start),
		Stopped:   "closed-form",
	}
	stats.FinalValLoss = ml.ValLoss(m, val)
	return stats, nil
}

// Predict implements ml.Model.
func (m *Model) Predict(e ml.Example) float64 {
	if m.w == nil {
		return 1
	}
	s := m.w[len(m.w)-1]
	n := len(m.w) - 1
	if len(e.Flat) < n {
		n = len(e.Flat)
	}
	for i := 0; i < n; i++ {
		s += m.w[i] * e.Flat[i]
	}
	return math.Exp(s)
}

// solve performs Gaussian elimination with partial pivoting on a copy of
// the inputs.
func solve(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	m := make([][]float64, n)
	for i := range m {
		m[i] = append(append([]float64(nil), a[i]...), b[i])
	}
	for col := 0; col < n; col++ {
		// Pivot.
		p := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[p][col]) {
				p = r
			}
		}
		if math.Abs(m[p][col]) < 1e-12 {
			return nil, fmt.Errorf("linreg: singular normal matrix at column %d", col)
		}
		m[col], m[p] = m[p], m[col]
		// Eliminate below.
		for r := col + 1; r < n; r++ {
			f := m[r][col] / m[col][col]
			if f == 0 {
				continue
			}
			for c := col; c <= n; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	// Back substitution.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := m[i][n]
		for j := i + 1; j < n; j++ {
			s -= m[i][j] * x[j]
		}
		x[i] = s / m[i][i]
	}
	return x, nil
}

// linregExport is the persisted form.
type linregExport struct {
	Lambda float64   `json:"lambda"`
	W      []float64 `json:"w"`
}

// MarshalModel implements ml.Persistable.
func (m *Model) MarshalModel() ([]byte, error) {
	if m.w == nil {
		return nil, fmt.Errorf("linreg: model not trained")
	}
	return json.Marshal(linregExport{Lambda: m.Lambda, W: m.w})
}

// UnmarshalModel implements ml.Persistable.
func (m *Model) UnmarshalModel(data []byte) error {
	var e linregExport
	if err := json.Unmarshal(data, &e); err != nil {
		return err
	}
	if len(e.W) == 0 {
		return fmt.Errorf("linreg: export has no weights")
	}
	m.Lambda = e.Lambda
	m.w = e.W
	return nil
}
