#!/usr/bin/env bash
# fabric_smoke.sh — end-to-end smoke of the distributed campaign fabric
# through real processes and real sockets: build the CLI, start a
# dispatcher, enqueue a sharded campaign over HTTP, drain it with two
# worker daemons, and verify every job completed and its records landed
# in the dispatcher's run store. The in-process fabric e2e test
# (internal/queue/fabric_test.go) covers the protocol; this script
# covers the binary — flags, subcommands, and the serve/worker wiring.
#
# Deliberately dependency-free: verification uses grep/wc, not jq.
set -euo pipefail
cd "$(dirname "$0")/.."

WORK="$(mktemp -d)"
BIN="$WORK/pdspbench"
DATA="$WORK/data"
SERVE_LOG="$WORK/serve.log"
SERVER_PID=""

cleanup() {
  if [ -n "$SERVER_PID" ] && kill -0 "$SERVER_PID" 2>/dev/null; then
    kill "$SERVER_PID" 2>/dev/null || true
    wait "$SERVER_PID" 2>/dev/null || true
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT

echo "== fabric smoke: build"
go build -o "$BIN" ./cmd/pdspbench

# A degree sweep over two structures: 6 shards, each a one-measurement
# campaign a worker can finish in well under a second at fast fidelity.
SPEC="$WORK/campaign.json"
cat > "$SPEC" <<'JSON'
{
  "name": "fabric-smoke",
  "workloads": [
    {"structure": "linear", "degrees": [1, 2, 4]},
    {"structure": "2-way-join", "degrees": [2, 4, 8]}
  ]
}
JSON
JOBS=6

# Ports can collide on shared CI hosts; walk a small range until the
# dispatcher binds.
ADDR=""
for port in 18431 18432 18433 18434 18435 18436 18437 18438 18439; do
  "$BIN" serve --addr "127.0.0.1:$port" --data "$DATA" >"$SERVE_LOG" 2>&1 &
  SERVER_PID=$!
  for _ in $(seq 20); do
    if ! kill -0 "$SERVER_PID" 2>/dev/null; then
      break # bind failed; try the next port
    fi
    if grep -q "serving PDSP-Bench API" "$SERVE_LOG"; then
      ADDR="127.0.0.1:$port"
      break
    fi
    sleep 0.1
  done
  [ -n "$ADDR" ] && break
  SERVER_PID=""
done
if [ -z "$ADDR" ]; then
  echo "fabric_smoke: could not start dispatcher" >&2
  cat "$SERVE_LOG" >&2
  exit 1
fi
URL="http://$ADDR"
echo "== fabric smoke: dispatcher on $URL"

echo "== fabric smoke: enqueue sharded campaign"
"$BIN" jobs enqueue --url "$URL" --spec "$SPEC" --split
ENQUEUED=$("$BIN" jobs list --url "$URL" --status pending | grep -c "fabric-smoke/" || true)
if [ "$ENQUEUED" -ne "$JOBS" ]; then
  echo "fabric_smoke: enqueued $ENQUEUED jobs, want $JOBS" >&2
  exit 1
fi

echo "== fabric smoke: drain with two workers"
"$BIN" worker --url "$URL" --name smoke-a --once --poll 100ms &
WORKER_A=$!
"$BIN" worker --url "$URL" --name smoke-b --once --poll 100ms
wait "$WORKER_A"

echo "== fabric smoke: verify"
COMPLETED=$("$BIN" jobs list --url "$URL" --status completed | grep -c "fabric-smoke/" || true)
if [ "$COMPLETED" -ne "$JOBS" ]; then
  echo "fabric_smoke: $COMPLETED of $JOBS jobs completed" >&2
  "$BIN" jobs list --url "$URL" >&2
  exit 1
fi
# Each one-measurement shard contributes exactly one RunRecord to the
# dispatcher's "runs" collection (one JSONL line per record).
RUNS=$(wc -l < "$DATA/runs.jsonl")
if [ "$RUNS" -ne "$JOBS" ]; then
  echo "fabric_smoke: runs store has $RUNS records, want $JOBS" >&2
  exit 1
fi
WORKERS=$("$BIN" jobs workers --url "$URL" | grep -c "smoke-" || true)
if [ "$WORKERS" -ne 2 ]; then
  echo "fabric_smoke: worker listing shows $WORKERS workers, want 2" >&2
  exit 1
fi

echo "fabric_smoke: $JOBS jobs drained by 2 workers, $RUNS records stored"
