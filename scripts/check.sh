#!/usr/bin/env bash
# check.sh — the pre-PR gate for this repo. Everything here must pass
# before a change merges:
#
#   1. go vet        — the stock correctness screens
#   2. pdsplint      — this repo's own static guarantees (determinism,
#                      goroutine/lock/error discipline, metric registry,
#                      layering); see DESIGN.md "Static guarantees"
#   3. go test -race -short — every package under the race detector,
#                      including pdsplint's fixture tests and the
#                      goroutine-leak gates on engine/simengine. -short
#                      skips only the single-threaded ML/shape grinds
#                      (they have no concurrency to race and are ~10x
#                      slower under the detector); all engine, server,
#                      and simengine concurrency runs raced.
#   4. go test       — the full suite, race detector off, so the slow
#                      shape tests still gate the merge
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== pdsplint ./..."
go run ./cmd/pdsplint ./...

echo "== go test -race -short ./..."
go test -race -short ./...

echo "== go test ./..."
go test ./...

#   4b. fuzz smoke — a couple of seconds per target keeps the harnesses
#       honest (a bit-rotted fuzz target fails here, not in a long
#       nightly run). Real exploration happens off the gate with longer
#       -fuzztime budgets.
echo "== fuzz smoke (2s per target)"
go test -run '^$' -fuzz '^FuzzValueHash$' -fuzztime 2s ./internal/tuple
go test -run '^$' -fuzz '^FuzzPlanRoundTrip$' -fuzztime 2s ./internal/core

#   4c. fabric smoke — the distributed campaign fabric exercised through
#       the built binary: a dispatcher process, an HTTP-enqueued sharded
#       campaign, two worker daemons draining it. Catches CLI wiring and
#       flag regressions the in-process tests cannot see.
echo "== scripts/fabric_smoke.sh"
scripts/fabric_smoke.sh

#   5. (opt-in) substrate micro-benchmarks — set BENCH=1 to run
#      scripts/bench.sh after the gates and record a BENCH_<n>.json
#      entry in the performance trajectory. Not part of the default
#      gate: benchmark numbers are machine-dependent and noisy on
#      shared CI hosts, so recording them is a deliberate act.
if [ "${BENCH:-0}" = "1" ]; then
  echo "== scripts/bench.sh (BENCH=1)"
  scripts/bench.sh
fi

echo "check.sh: all gates passed"
