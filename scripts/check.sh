#!/usr/bin/env bash
# check.sh — the pre-PR gate for this repo. Everything here must pass
# before a change merges:
#
#   1. go build      — compile everything first; nothing else is
#                      meaningful on a broken tree
#   2. go vet        — the stock correctness screens
#   3. pdsplint      — this repo's own static guarantees: the v2
#                      whole-program pass (ctx-propagation, lock-order,
#                      lease-linearity, chan-discipline) plus the
#                      original per-package rules; see DESIGN.md
#                      "Static guarantees". Emits lint_report.json as a
#                      machine-readable gate artifact.
#   4. go test -race -short — every package under the race detector,
#                      including the fabric's queue/server protocol
#                      tests and the goroutine-leak TestMain gates.
#                      -short skips only the single-threaded ML/shape
#                      grinds (no concurrency to race, ~10x slower under
#                      the detector).
#   5. go test       — the full suite, race detector off, so the slow
#                      shape tests still gate the merge
#   6. fuzz smoke    — seconds per target to keep the harnesses honest
#   7. columnar equivalence — the columnar plane re-proven bit-identical
#                      to the row plane (engine batch tests, backend
#                      parity off/on, kernel-vs-Eval table + fuzz smoke)
#   8. event-time plane — watermark monotonicity and late-drop
#                      properties, session windows, and the disorder
#                      parity cases pinned across both backends
#   9. bench compare — scripts/bench.sh --compare gates >10% throughput
#                      regressions between the two newest same-machine
#                      BENCH_*.json recordings
#  10. fabric smoke  — the distributed fabric through the built binary
#  11. storm smoke   — a short seeded storm against a self-hosted
#                      dispatcher: zero unexplained 5xx, per-tenant
#                      fairness within tolerance
#
# Usage:
#   scripts/check.sh           # the full gate
#   scripts/check.sh --quick   # fail-fast inner loop: build + vet + pdsplint
#   BENCH=1 scripts/check.sh   # full gate + substrate micro-benchmarks
#
# Every stage prints its wall time so gate latency regressions (the lint
# budget is ~10s) are visible in CI logs, not just felt locally.
set -euo pipefail
cd "$(dirname "$0")/.."

QUICK=0
for arg in "$@"; do
  case "$arg" in
    --quick) QUICK=1 ;;
    *) echo "check.sh: unknown argument: $arg (supported: --quick)" >&2; exit 2 ;;
  esac
done

# stage <name> <cmd...> — run a gate stage and print its wall time.
stage() {
  local name="$1"; shift
  echo "== $name"
  local t0 t1
  t0=$(date +%s.%N)
  "$@"
  t1=$(date +%s.%N)
  awk -v n="$name" -v a="$t0" -v b="$t1" 'BEGIN { printf "-- %s: %.1fs\n", n, b - a }'
}

stage "go build ./..." go build ./...

stage "go vet ./..." go vet ./...

# pdsplint writes its JSON report even on failure so CI can archive the
# findings; on a clean run the artifact records the timings instead.
pdsplint_json() {
  if ! go run ./cmd/pdsplint -json ./... > lint_report.json; then
    echo "pdsplint findings (from lint_report.json):" >&2
    cat lint_report.json >&2
    return 1
  fi
}
stage "pdsplint ./... (-> lint_report.json)" pdsplint_json

if [ "$QUICK" = "1" ]; then
  echo "check.sh: quick gates passed (build + vet + pdsplint)"
  exit 0
fi

stage "go test -race -short ./..." go test -race -short ./...

stage "go test ./..." go test ./...

#   6. fuzz smoke — a couple of seconds per target keeps the harnesses
#      honest (a bit-rotted fuzz target fails here, not in a long
#      nightly run). Real exploration happens off the gate with longer
#      -fuzztime budgets. FuzzLintLoader drives malformed source through
#      the whole type-aware lint pipeline: it must diagnose, never panic.
fuzz_smoke() {
  go test -run '^$' -fuzz '^FuzzValueHash$' -fuzztime 2s ./internal/tuple
  go test -run '^$' -fuzz '^FuzzPlanRoundTrip$' -fuzztime 2s ./internal/core
  go test -run '^$' -fuzz '^FuzzLintLoader$' -fuzztime 2s ./internal/lint
}
stage "fuzz smoke (2s per target)" fuzz_smoke

#   7. columnar equivalence — the named suite that holds the columnar
#      data plane to bit-identical outputs against the row plane: the
#      engine's batch-vs-row and fallback tests, the backend parity
#      cases run with Columnar off and on, the kernel-vs-Eval table,
#      and a fuzz smoke over the kernel equivalence target. Runs inside
#      `go test ./...` too; the explicit stage keeps the gate visible
#      and fails with a focused name when the planes diverge.
columnar_equivalence() {
  go test -count=1 -run 'TestColumnar|TestCompileFilterMatchesEvalTable' \
    ./internal/engine ./internal/core ./internal/backend
  go test -run '^$' -fuzz '^FuzzColumnarKernelEquivalence$' -fuzztime 2s ./internal/core
}
stage "columnar equivalence (row vs column planes)" columnar_equivalence

#   8. event-time plane — the watermark semantics held to their written
#      properties: per-channel monotonicity, late tuples dropped and
#      counted (never reordered), in-order input reproducing the
#      arrival-driven pane emissions bit for bit, session-window gap
#      merging, and the disorder parity cases pinned across the sim and
#      real backends. Runs inside `go test ./...` too; the explicit
#      stage fails with a focused name when event time regresses.
event_time_plane() {
  go test -count=1 \
    -run 'TestNoteWatermark|TestEmitWatermark|TestLateDrops|TestBoundedDisorder|TestInOrderZeroLateness|TestSession|TestOpenSession' \
    ./internal/engine
  go test -count=1 -run 'TestBackendParity|TestColumnarBackendParity|TestFaultParity' ./internal/backend
}
stage "event-time plane (watermarks, lateness, disorder parity)" event_time_plane

#   9. bench compare — throughput regression smoke over the recorded
#      trajectory. Needs two BENCH_*.json files from the same machine to
#      mean anything; with fewer than two it reports and passes.
stage "bench.sh --compare" scripts/bench.sh --compare

#  10. fabric smoke — the distributed campaign fabric exercised through
#      the built binary: a dispatcher process, an HTTP-enqueued sharded
#      campaign, two worker daemons draining it. Catches CLI wiring and
#      flag regressions the in-process tests cannot see.
stage "scripts/fabric_smoke.sh" scripts/fabric_smoke.sh

#  11. storm smoke — the serving front door under a short, seeded
#      mixed-tenant saturation storm (self-hosted dispatcher, sim
#      fidelity shrunk). --smoke fails the stage on any 5xx that is not
#      a deliberate shed, on transport errors, and on per-tenant OK
#      spread beyond --fair-tol: 429/503 are the front door working,
#      anything else under load is a defect. --out - keeps the gate
#      from minting BENCH_<n>.json entries.
storm_smoke() {
  go run ./cmd/pdspbench storm \
    --seed 7 --duration 2s --max 400 --smoke --fair-tol 0.25 --out -
}
stage "storm smoke (seeded saturation, fairness gate)" storm_smoke

#   12. (opt-in) substrate micro-benchmarks — set BENCH=1 to run
#      scripts/bench.sh after the gates and record a BENCH_<n>.json
#      entry in the performance trajectory. Not part of the default
#      gate: benchmark numbers are machine-dependent and noisy on
#      shared CI hosts, so recording them is a deliberate act.
if [ "${BENCH:-0}" = "1" ]; then
  stage "scripts/bench.sh (BENCH=1)" scripts/bench.sh
fi

echo "check.sh: all gates passed"
