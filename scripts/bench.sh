#!/usr/bin/env bash
# bench.sh — runs the substrate micro-benchmarks with -benchmem and
# records the results as BENCH_<n>.json in the repo root, where <n> is
# the next free index. The BENCH_*.json sequence is the repo's recorded
# performance trajectory: each entry carries name, ns/op, allocs/op,
# B/op, and any custom metrics (tuples/s, MB/s) per benchmark, so a
# regression shows up as a diff against the last committed file.
#
# Usage:
#   scripts/bench.sh            # run and write BENCH_<n>.json
#   scripts/bench.sh --compare  # diff the two newest BENCH_*.json files:
#                               # exit non-zero if any shared tuples_per_s
#                               # metric regressed by more than 10%
#   BENCH_FILTER=Filter scripts/bench.sh   # restrict to matching names
#   BENCH_COUNT=5 scripts/bench.sh         # repetitions (default 3)
#
# The default selection is the substrate scoreboard: the real engine's
# filter and join pipelines (columnar plane), the event-time plane under
# disorder (zipfburst windows with their late-drop rate, the windowed
# join under bounded skew), the columnar kernel and batch-conversion
# micro-benchmarks, and the DES simulator event rate — the benchmarks
# the batched data plane is judged by. All of them report tuples/s, so
# --compare can gate on throughput uniformly.
#
# Caveat: BENCH_*.json files are only comparable when recorded on the
# same machine — --compare gates regressions between two same-machine
# recordings, not across hardware generations.
set -euo pipefail
cd "$(dirname "$0")/.."

FILTER="${BENCH_FILTER:-BenchmarkEngineFilterThroughput|BenchmarkEngineWindowedJoin|BenchmarkEngineDisorderedWindow|BenchmarkEngineWindowedJoinUnderSkew|BenchmarkColumnarFilterThroughput|BenchmarkColumnBatchConvert|BenchmarkSimulatorEventRate}"
COUNT="${BENCH_COUNT:-3}"
BENCHTIME="${BENCH_TIME:-10x}"

# --compare: no benchmarks run; diff the two newest recordings. A shared
# benchmark whose tuples_per_s dropped >10% fails the gate. Metrics
# present in only one file (new or retired benchmarks) are skipped.
if [ "${1:-}" = "--compare" ]; then
  newest="" prev=""
  n=1
  while [ -e "BENCH_${n}.json" ]; do
    prev="$newest"
    newest="BENCH_${n}.json"
    n=$((n + 1))
  done
  if [ -z "$prev" ]; then
    echo "bench.sh --compare: need at least two BENCH_*.json files, skipping"
    exit 0
  fi
  echo "bench.sh --compare: $newest vs $prev"
  awk -v newf="$newest" -v oldf="$prev" '
  function scan(file, tab,   line, name, v) {
    while ((getline line < file) > 0) {
      if (match(line, /"name": "[^"]+"/)) {
        name = substr(line, RSTART + 9, RLENGTH - 10)
        if (match(line, /"tuples_per_s": [0-9.eE+-]+/)) {
          v = substr(line, RSTART + 16, RLENGTH - 16)
          tab[name] = v + 0
        }
      }
    }
    close(file)
  }
  BEGIN {
    scan(newf, now); scan(oldf, old)
    bad = 0
    for (name in now) {
      if (!(name in old) || old[name] <= 0) continue
      delta = (now[name] - old[name]) / old[name] * 100
      verdict = "ok"
      if (delta < -10) { verdict = "REGRESSION"; bad = 1 }
      printf "  %-40s %12.4g -> %12.4g tuples/s  %+6.1f%%  %s\n", name, old[name], now[name], delta, verdict
    }
    if (bad) {
      print "bench.sh --compare: throughput regressed >10%" > "/dev/stderr"
      exit 1
    }
    print "bench.sh --compare: no regression beyond 10%"
  }'
  exit $?
fi

n=1
while [ -e "BENCH_${n}.json" ]; do
  n=$((n + 1))
done
out="BENCH_${n}.json"

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

echo "== go test -bench ${FILTER} -benchmem -benchtime ${BENCHTIME} -count ${COUNT}"
go test -run '^$' -bench "${FILTER}" -benchmem -benchtime "${BENCHTIME}" -count "${COUNT}" . | tee "$raw"

# Parse `BenchmarkName  N  123 ns/op  45 B/op  6 allocs/op  7.8 unit ...`
# lines into JSON, averaging repetitions of the same benchmark.
awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
/^Benchmark/ {
  name = $1
  sub(/-[0-9]+$/, "", name)
  count[name]++
  for (i = 3; i < NF; i += 2) {
    val = $i; unit = $(i + 1)
    gsub(/[^A-Za-z0-9_\/%.-]/, "", unit)
    sum[name, unit] += val
    if (!((name, unit) in seen)) { seen[name, unit] = 1; units[name] = units[name] unit SUBSEP }
  }
}
END {
  printf "{\n  \"recorded\": \"%s\",\n  \"benchmarks\": [\n", date
  nb = 0
  for (name in count) order[++nb] = name
  # stable order: sort names
  for (i = 1; i <= nb; i++)
    for (j = i + 1; j <= nb; j++)
      if (order[j] < order[i]) { t = order[i]; order[i] = order[j]; order[j] = t }
  for (i = 1; i <= nb; i++) {
    name = order[i]
    printf "    {\"name\": \"%s\", \"reps\": %d", name, count[name]
    split(units[name], us, SUBSEP)
    for (u in us) {
      unit = us[u]
      if (unit == "") continue
      key = unit
      gsub(/\//, "_per_", key)
      printf ", \"%s\": %.6g", key, sum[name, unit] / count[name]
    }
    printf "}%s\n", (i < nb ? "," : "")
  }
  printf "  ]\n}\n"
}' "$raw" > "$out"

echo "bench.sh: wrote $out"
